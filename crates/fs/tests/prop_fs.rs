//! Property-based tests over the filesystem invariants.
//!
//! Strategy: generate random operation sequences against a [`MemFs`] and an
//! in-test oracle (a plain `HashMap<String, Vec<u8>>` of flat file contents),
//! then check the filesystem agrees with the oracle and preserves its own
//! structural invariants (link counts, space accounting).

use cntr_fs::memfs::memfs_with_capacity;
use cntr_fs::{Filesystem, FsContext, MemFs};
use cntr_types::{DevId, FileType, Ino, Mode, OpenFlags, RenameFlags, SetAttr, SimClock};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    WriteAt(u8, u16, Vec<u8>),
    Truncate(u8, u16),
    Unlink(u8),
    Rename(u8, u8),
    Read(u8),
}

fn name(slot: u8) -> String {
    format!("file{slot}")
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Create),
        (
            0u8..8,
            0u16..20000,
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(s, o, d)| Op::WriteAt(s, o, d)),
        (0u8..8, 0u16..20000).prop_map(|(s, l)| Op::Truncate(s, l)),
        (0u8..8).prop_map(Op::Unlink),
        (0u8..8, 0u8..8).prop_map(|(a, b)| Op::Rename(a, b)),
        (0u8..8).prop_map(Op::Read),
    ]
}

fn lookup_ino(fs: &MemFs, n: &str) -> Option<Ino> {
    fs.lookup(Ino::ROOT, n).ok().map(|s| s.ino)
}

fn fs_read_all(fs: &MemFs, n: &str) -> Option<Vec<u8>> {
    let ino = lookup_ino(fs, n)?;
    let st = fs.getattr(ino).ok()?;
    let fh = fs.open(ino, OpenFlags::RDONLY).ok()?;
    let mut buf = vec![0u8; st.size as usize];
    let got = fs.read(ino, fh, 0, &mut buf).ok()?;
    fs.release(ino, fh).ok()?;
    buf.truncate(got);
    Some(buf)
}

fn apply(fs: &Arc<MemFs>, oracle: &mut HashMap<String, Vec<u8>>, op: &Op) {
    let ctx = FsContext::root();
    match op {
        Op::Create(slot) => {
            let n = name(*slot);
            let r = fs.mknod(Ino::ROOT, &n, FileType::Regular, Mode::RW_R__R__, 0, &ctx);
            match r {
                Ok(_) => {
                    assert!(!oracle.contains_key(&n), "fs created but oracle has {n}");
                    oracle.insert(n, Vec::new());
                }
                Err(e) => {
                    assert!(
                        oracle.contains_key(&n),
                        "create failed ({e}) but oracle lacks {n}"
                    );
                }
            }
        }
        Op::WriteAt(slot, off, data) => {
            let n = name(*slot);
            let Some(ino) = lookup_ino(fs, &n) else {
                assert!(!oracle.contains_key(&n));
                return;
            };
            let fh = fs.open(ino, OpenFlags::WRONLY).unwrap();
            fs.write(ino, fh, u64::from(*off), data).unwrap();
            fs.release(ino, fh).unwrap();
            let content = oracle.get_mut(&n).expect("oracle out of sync");
            let end = *off as usize + data.len();
            if content.len() < end {
                content.resize(end, 0);
            }
            content[*off as usize..end].copy_from_slice(data);
        }
        Op::Truncate(slot, len) => {
            let n = name(*slot);
            let Some(ino) = lookup_ino(fs, &n) else {
                return;
            };
            fs.setattr(ino, &SetAttr::truncate(u64::from(*len)), &ctx)
                .unwrap();
            let content = oracle.get_mut(&n).expect("oracle out of sync");
            content.resize(*len as usize, 0);
        }
        Op::Unlink(slot) => {
            let n = name(*slot);
            match fs.unlink(Ino::ROOT, &n) {
                Ok(()) => {
                    assert!(oracle.remove(&n).is_some(), "unlinked untracked {n}");
                }
                Err(_) => assert!(!oracle.contains_key(&n)),
            }
        }
        Op::Rename(a, b) => {
            let (na, nb) = (name(*a), name(*b));
            match fs.rename(Ino::ROOT, &na, Ino::ROOT, &nb, RenameFlags::NONE) {
                Ok(()) => {
                    if a != b {
                        let v = oracle.remove(&na).expect("rename source untracked");
                        oracle.insert(nb, v);
                    }
                }
                Err(_) => assert!(!oracle.contains_key(&na)),
            }
        }
        Op::Read(slot) => {
            let n = name(*slot);
            match (fs_read_all(fs, &n), oracle.get(&n)) {
                (Some(got), Some(want)) => assert_eq!(&got, want, "content mismatch for {n}"),
                (None, None) => {}
                (got, want) => panic!("presence mismatch for {n}: fs={got:?} oracle={want:?}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// OverlayFs equivalence oracle
// ---------------------------------------------------------------------------
//
// An overlay over N lower layers must behave exactly like the *flattened*
// filesystem (layers applied in order into one MemFs). We seed two layers
// with overlapping file sets, build both representations, then drive the
// same random operation sequence against each and require identical
// outcomes — success/errno, file contents, and directory listings. This is
// the property that licenses the engine swapping its flat rootfs for the
// overlay.

mod overlay_oracle {
    use super::*;
    use cntr_fs::memfs::memfs;
    use cntr_overlay::{blobfs, BlobStore, OverlayFs};
    use cntr_types::Errno;

    /// Initial state: which of the 8 slots exist in each layer, with what
    /// content seed.
    #[derive(Debug, Clone)]
    pub struct Seed {
        pub base: Vec<(u8, u8)>,
        pub top: Vec<(u8, u8)>,
    }

    pub fn seed_strategy() -> impl Strategy<Value = Seed> {
        (
            proptest::collection::vec((0u8..8, any::<u8>()), 0..6),
            proptest::collection::vec((0u8..8, any::<u8>()), 0..6),
        )
            .prop_map(|(base, top)| Seed { base, top })
    }

    fn populate(fs: &dyn Filesystem, files: &[(u8, u8)]) {
        let ctx = FsContext::root();
        for &(slot, fill) in files {
            let n = name(slot);
            // Later duplicates overwrite earlier ones, as layering would.
            let ino = match fs.mknod(Ino::ROOT, &n, FileType::Regular, Mode::RW_R__R__, 0, &ctx) {
                Ok(st) => st.ino,
                Err(_) => fs.lookup(Ino::ROOT, &n).unwrap().ino,
            };
            fs.setattr(ino, &SetAttr::truncate(0), &ctx).unwrap();
            let fh = fs.open(ino, OpenFlags::WRONLY).unwrap();
            let content = vec![fill; usize::from(fill) + 1];
            fs.write(ino, fh, 0, &content).unwrap();
            fs.release(ino, fh).unwrap();
        }
    }

    /// Builds (overlay, flattened-oracle) from one seed.
    pub fn build(seed: &Seed) -> (Arc<OverlayFs>, Arc<MemFs>) {
        let clock = SimClock::new();
        let store = BlobStore::new();
        let base = blobfs(DevId(31), clock.clone(), store.clone());
        populate(base.as_ref(), &seed.base);
        let top = blobfs(DevId(32), clock.clone(), store.clone());
        populate(top.as_ref(), &seed.top);
        let upper = blobfs(DevId(33), clock.clone(), store);
        let overlay = OverlayFs::new(DevId(30), vec![top, base], upper);

        let oracle = memfs(DevId(40), clock);
        populate(oracle.as_ref(), &seed.base);
        populate(oracle.as_ref(), &seed.top);
        (overlay, oracle)
    }

    fn read_slot(fs: &dyn Filesystem, n: &str) -> Option<Vec<u8>> {
        let ino = fs.lookup(Ino::ROOT, n).ok()?.ino;
        let st = fs.getattr(ino).ok()?;
        let fh = fs.open(ino, OpenFlags::RDONLY).ok()?;
        let mut buf = vec![0u8; st.size as usize];
        let got = fs.read(ino, fh, 0, &mut buf).ok()?;
        fs.release(ino, fh).ok()?;
        buf.truncate(got);
        Some(buf)
    }

    /// Applies `op` to both filesystems and asserts identical outcomes.
    pub fn apply_both(ovl: &dyn Filesystem, mem: &dyn Filesystem, op: &Op) {
        let ctx = FsContext::root();
        let errno = |r: &Result<(), Errno>| *r;
        match op {
            Op::Create(slot) => {
                let n = name(*slot);
                let a = ovl
                    .mknod(Ino::ROOT, &n, FileType::Regular, Mode::RW_R__R__, 0, &ctx)
                    .map(|_| ());
                let b = mem
                    .mknod(Ino::ROOT, &n, FileType::Regular, Mode::RW_R__R__, 0, &ctx)
                    .map(|_| ());
                assert_eq!(errno(&a), errno(&b), "create {n}");
            }
            Op::WriteAt(slot, off, data) => {
                let n = name(*slot);
                for fs in [ovl, mem] {
                    let Ok(st) = fs.lookup(Ino::ROOT, &n) else {
                        continue;
                    };
                    let fh = fs.open(st.ino, OpenFlags::WRONLY).unwrap();
                    fs.write(st.ino, fh, u64::from(*off), data).unwrap();
                    fs.release(st.ino, fh).unwrap();
                }
            }
            Op::Truncate(slot, len) => {
                let n = name(*slot);
                for fs in [ovl, mem] {
                    if let Ok(st) = fs.lookup(Ino::ROOT, &n) {
                        fs.setattr(st.ino, &SetAttr::truncate(u64::from(*len)), &ctx)
                            .unwrap();
                    }
                }
            }
            Op::Unlink(slot) => {
                let n = name(*slot);
                let a = ovl.unlink(Ino::ROOT, &n);
                let b = mem.unlink(Ino::ROOT, &n);
                assert_eq!(a, b, "unlink {n}");
            }
            Op::Rename(x, y) => {
                let (nx, ny) = (name(*x), name(*y));
                let a = ovl.rename(Ino::ROOT, &nx, Ino::ROOT, &ny, RenameFlags::NONE);
                let b = mem.rename(Ino::ROOT, &nx, Ino::ROOT, &ny, RenameFlags::NONE);
                assert_eq!(a, b, "rename {nx} -> {ny}");
            }
            Op::Read(slot) => {
                let n = name(*slot);
                let a = read_slot(ovl, &n);
                let b = read_slot(mem, &n);
                assert_eq!(a, b, "content mismatch for {n}");
            }
        }
    }

    /// Full post-run audit: listings, sizes and contents must agree.
    pub fn audit(ovl: &dyn Filesystem, mem: &dyn Filesystem) {
        let list = |fs: &dyn Filesystem| -> Vec<(String, FileType)> {
            fs.readdir(Ino::ROOT)
                .unwrap()
                .into_iter()
                .map(|d| (d.name, d.ftype))
                .collect()
        };
        let a = list(ovl);
        let b = list(mem);
        assert_eq!(a, b, "merged readdir must equal flattened readdir");
        for (n, _) in a {
            assert_eq!(read_slot(ovl, &n), read_slot(mem, &n), "content of {n}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn overlay_matches_flattened_memfs(
        seed in overlay_oracle::seed_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let (overlay, oracle) = overlay_oracle::build(&seed);
        for op in &ops {
            overlay_oracle::apply_both(overlay.as_ref(), oracle.as_ref(), op);
        }
        overlay_oracle::audit(overlay.as_ref(), oracle.as_ref());
    }

    #[test]
    fn memfs_matches_flat_oracle(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let fs = memfs_with_capacity(DevId(1), SimClock::new(), 1 << 30);
        let mut oracle = HashMap::new();
        for op in &ops {
            apply(&fs, &mut oracle, op);
        }
        // Final full audit.
        let listed: Vec<String> = fs
            .readdir(Ino::ROOT)
            .unwrap()
            .into_iter()
            .map(|d| d.name)
            .collect();
        let mut expected: Vec<String> = oracle.keys().cloned().collect();
        expected.sort();
        prop_assert_eq!(listed, expected);
        for (n, want) in &oracle {
            let got = fs_read_all(&fs, n).expect("tracked file readable");
            prop_assert_eq!(&got, want);
        }
    }

    #[test]
    fn used_bytes_never_leaks_after_delete_everything(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let fs = memfs_with_capacity(DevId(1), SimClock::new(), 1 << 30);
        let mut oracle = HashMap::new();
        for op in &ops {
            apply(&fs, &mut oracle, op);
        }
        for n in oracle.keys() {
            fs.unlink(Ino::ROOT, n).unwrap();
        }
        prop_assert_eq!(fs.used_bytes(), 0, "space must be reclaimed");
        prop_assert_eq!(fs.inode_count(), 1, "only the root remains");
    }

    #[test]
    fn sparse_reads_equal_zero_filled_oracle(
        offset in 0u64..100_000,
        len in 1usize..4096,
    ) {
        let fs = memfs_with_capacity(DevId(1), SimClock::new(), 1 << 30);
        let ctx = FsContext::root();
        let st = fs
            .mknod(Ino::ROOT, "sparse", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        // One byte far out creates a sparse file.
        fs.write(st.ino, fh, offset + len as u64, &[0xFF]).unwrap();
        let mut buf = vec![0xAAu8; len];
        let got = fs.read(st.ino, fh, offset, &mut buf).unwrap();
        prop_assert_eq!(got, len);
        prop_assert!(buf.iter().all(|&b| b == 0), "hole must read zero");
    }
}
