//! `MemFs` — the tmpfs of the simulation.
//!
//! The paper mounts CntrFS *on top of tmpfs* for the xfstests run (§5.1:
//! "we mounted CNTRFS on top of tmpfs, an in-memory filesystem"); `MemFs`
//! is that backing filesystem, and it also provides container root
//! filesystems for the engine substrate.

use crate::nodefs::NodeFs;
use crate::store::MemStore;
use crate::traits::FsFeatures;
use cntr_types::{DevId, SimClock};
use std::sync::Arc;

/// A tmpfs-like in-memory filesystem.
pub type MemFs = NodeFs<MemStore>;

/// Default capacity when none is specified: 16 GiB, matching the paper
/// testbed's RAM.
pub const DEFAULT_CAPACITY: u64 = 16 << 30;

/// Creates a [`MemFs`] with the default capacity.
pub fn memfs(dev_id: DevId, clock: SimClock) -> Arc<MemFs> {
    memfs_with_capacity(dev_id, clock, DEFAULT_CAPACITY)
}

/// Creates a [`MemFs`] with an explicit capacity in bytes (for `ENOSPC`
/// testing).
pub fn memfs_with_capacity(dev_id: DevId, clock: SimClock, capacity: u64) -> Arc<MemFs> {
    Arc::new(NodeFs::new(
        dev_id,
        "tmpfs",
        FsFeatures::tmpfs(),
        capacity,
        clock,
        MemStore,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Filesystem, FsContext, XattrFlags};
    use cntr_types::{Errno, FileType, Gid, Ino, Mode, OpenFlags, RenameFlags, SetAttr, Uid};

    fn fs() -> Arc<MemFs> {
        memfs(DevId(1), SimClock::new())
    }

    fn root_ctx() -> FsContext {
        FsContext::root()
    }

    fn create_file(f: &MemFs, parent: Ino, name: &str) -> Ino {
        f.mknod(
            parent,
            name,
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &root_ctx(),
        )
        .unwrap()
        .ino
    }

    #[test]
    fn create_lookup_read_write() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "hello.txt");
        let fh = f.open(ino, OpenFlags::RDWR).unwrap();
        assert_eq!(f.write(ino, fh, 0, b"hello world").unwrap(), 11);
        let mut buf = [0u8; 32];
        assert_eq!(f.read(ino, fh, 0, &mut buf).unwrap(), 11);
        assert_eq!(&buf[..11], b"hello world");
        assert_eq!(f.read(ino, fh, 6, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"world");
        let st = f.lookup(Ino::ROOT, "hello.txt").unwrap();
        assert_eq!(st.size, 11);
        f.release(ino, fh).unwrap();
    }

    #[test]
    fn lookup_missing_is_enoent() {
        let f = fs();
        assert_eq!(f.lookup(Ino::ROOT, "nope"), Err(Errno::ENOENT));
    }

    #[test]
    fn mkdir_and_nlink_bookkeeping() {
        let f = fs();
        let d = f
            .mkdir(Ino::ROOT, "d", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        assert_eq!(d.nlink, 2);
        assert_eq!(f.getattr(Ino::ROOT).unwrap().nlink, 3);
        let _sub = f.mkdir(d.ino, "sub", Mode::RWXR_XR_X, &root_ctx()).unwrap();
        assert_eq!(f.getattr(d.ino).unwrap().nlink, 3);
        f.rmdir(d.ino, "sub").unwrap();
        assert_eq!(f.getattr(d.ino).unwrap().nlink, 2);
    }

    #[test]
    fn rmdir_refuses_non_empty() {
        let f = fs();
        let d = f
            .mkdir(Ino::ROOT, "d", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        create_file(&f, d.ino, "x");
        assert_eq!(f.rmdir(Ino::ROOT, "d"), Err(Errno::ENOTEMPTY));
        f.unlink(d.ino, "x").unwrap();
        f.rmdir(Ino::ROOT, "d").unwrap();
        assert_eq!(f.lookup(Ino::ROOT, "d"), Err(Errno::ENOENT));
    }

    #[test]
    fn unlink_dir_is_eisdir_and_rmdir_file_is_enotdir() {
        let f = fs();
        f.mkdir(Ino::ROOT, "d", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        create_file(&f, Ino::ROOT, "f");
        assert_eq!(f.unlink(Ino::ROOT, "d"), Err(Errno::EISDIR));
        assert_eq!(f.rmdir(Ino::ROOT, "f"), Err(Errno::ENOTDIR));
    }

    #[test]
    fn hardlinks_share_data_and_count() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "a");
        let st = f.link(ino, Ino::ROOT, "b").unwrap();
        assert_eq!(st.nlink, 2);
        let fh = f.open(ino, OpenFlags::WRONLY).unwrap();
        f.write(ino, fh, 0, b"shared").unwrap();
        f.release(ino, fh).unwrap();
        let b = f.lookup(Ino::ROOT, "b").unwrap();
        assert_eq!(b.ino, ino);
        assert_eq!(b.size, 6);
        f.unlink(Ino::ROOT, "a").unwrap();
        assert_eq!(f.lookup(Ino::ROOT, "b").unwrap().nlink, 1);
    }

    #[test]
    fn link_to_directory_is_eperm() {
        let f = fs();
        let d = f
            .mkdir(Ino::ROOT, "d", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        assert_eq!(f.link(d.ino, Ino::ROOT, "d2"), Err(Errno::EPERM));
    }

    #[test]
    fn unlinked_open_file_keeps_data_until_release() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "tmp");
        let fh = f.open(ino, OpenFlags::RDWR).unwrap();
        f.write(ino, fh, 0, b"orphan").unwrap();
        f.unlink(Ino::ROOT, "tmp").unwrap();
        // Still readable through the handle.
        let mut buf = [0u8; 6];
        assert_eq!(f.read(ino, fh, 0, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"orphan");
        let used_before = f.used_bytes();
        assert!(used_before > 0);
        f.release(ino, fh).unwrap();
        assert_eq!(f.used_bytes(), 0, "data reclaimed on final release");
        assert_eq!(f.getattr(ino), Err(Errno::ENOENT));
    }

    #[test]
    fn symlink_roundtrip() {
        let f = fs();
        let st = f
            .symlink(Ino::ROOT, "ln", "/target/path", &root_ctx())
            .unwrap();
        assert_eq!(st.ftype, FileType::Symlink);
        assert_eq!(st.size, 12);
        assert_eq!(f.readlink(st.ino).unwrap(), "/target/path");
        let file = create_file(&f, Ino::ROOT, "f");
        assert_eq!(f.readlink(file), Err(Errno::EINVAL));
    }

    #[test]
    fn rename_plain_and_replace() {
        let f = fs();
        let a = create_file(&f, Ino::ROOT, "a");
        f.rename(Ino::ROOT, "a", Ino::ROOT, "b", RenameFlags::NONE)
            .unwrap();
        assert_eq!(f.lookup(Ino::ROOT, "a"), Err(Errno::ENOENT));
        assert_eq!(f.lookup(Ino::ROOT, "b").unwrap().ino, a);

        let c = create_file(&f, Ino::ROOT, "c");
        f.rename(Ino::ROOT, "c", Ino::ROOT, "b", RenameFlags::NONE)
            .unwrap();
        assert_eq!(f.lookup(Ino::ROOT, "b").unwrap().ino, c);
        // The replaced inode is gone.
        assert_eq!(f.getattr(a), Err(Errno::ENOENT));
    }

    #[test]
    fn rename_noreplace_and_exchange() {
        let f = fs();
        let a = create_file(&f, Ino::ROOT, "a");
        let b = create_file(&f, Ino::ROOT, "b");
        assert_eq!(
            f.rename(Ino::ROOT, "a", Ino::ROOT, "b", RenameFlags::NOREPLACE),
            Err(Errno::EEXIST)
        );
        f.rename(Ino::ROOT, "a", Ino::ROOT, "b", RenameFlags::EXCHANGE)
            .unwrap();
        assert_eq!(f.lookup(Ino::ROOT, "a").unwrap().ino, b);
        assert_eq!(f.lookup(Ino::ROOT, "b").unwrap().ino, a);
    }

    #[test]
    fn rename_dir_into_own_subtree_is_einval() {
        let f = fs();
        let d = f
            .mkdir(Ino::ROOT, "d", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        let sub = f.mkdir(d.ino, "sub", Mode::RWXR_XR_X, &root_ctx()).unwrap();
        assert_eq!(
            f.rename(Ino::ROOT, "d", sub.ino, "oops", RenameFlags::NONE),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn rename_dir_over_nonempty_dir_is_enotempty() {
        let f = fs();
        let _a = f
            .mkdir(Ino::ROOT, "a", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        let b = f
            .mkdir(Ino::ROOT, "b", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        create_file(&f, b.ino, "x");
        assert_eq!(
            f.rename(Ino::ROOT, "a", Ino::ROOT, "b", RenameFlags::NONE),
            Err(Errno::ENOTEMPTY)
        );
    }

    #[test]
    fn rename_type_mismatches() {
        let f = fs();
        f.mkdir(Ino::ROOT, "d", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        create_file(&f, Ino::ROOT, "f");
        assert_eq!(
            f.rename(Ino::ROOT, "f", Ino::ROOT, "d", RenameFlags::NONE),
            Err(Errno::EISDIR)
        );
        assert_eq!(
            f.rename(Ino::ROOT, "d", Ino::ROOT, "f", RenameFlags::NONE),
            Err(Errno::ENOTDIR)
        );
    }

    #[test]
    fn rename_moves_dir_link_counts_between_parents() {
        let f = fs();
        let a = f
            .mkdir(Ino::ROOT, "a", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        let b = f
            .mkdir(Ino::ROOT, "b", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        f.mkdir(a.ino, "child", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        assert_eq!(f.getattr(a.ino).unwrap().nlink, 3);
        f.rename(a.ino, "child", b.ino, "child", RenameFlags::NONE)
            .unwrap();
        assert_eq!(f.getattr(a.ino).unwrap().nlink, 2);
        assert_eq!(f.getattr(b.ino).unwrap().nlink, 3);
    }

    #[test]
    fn truncate_and_extend() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "t");
        let fh = f.open(ino, OpenFlags::RDWR).unwrap();
        f.write(ino, fh, 0, &[0xAB; 100]).unwrap();
        f.setattr(ino, &SetAttr::truncate(10), &root_ctx()).unwrap();
        assert_eq!(f.getattr(ino).unwrap().size, 10);
        // Extend: the gap reads as zeroes.
        f.setattr(ino, &SetAttr::truncate(20), &root_ctx()).unwrap();
        let mut buf = [1u8; 20];
        assert_eq!(f.read(ino, fh, 0, &mut buf).unwrap(), 20);
        assert_eq!(&buf[..10], &[0xAB; 10]);
        assert_eq!(&buf[10..], &[0u8; 10]);
    }

    #[test]
    fn open_trunc_clears_content() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "t");
        let fh = f.open(ino, OpenFlags::WRONLY).unwrap();
        f.write(ino, fh, 0, b"data").unwrap();
        f.release(ino, fh).unwrap();
        let fh2 = f
            .open(ino, OpenFlags::WRONLY.with(OpenFlags::TRUNC))
            .unwrap();
        assert_eq!(f.getattr(ino).unwrap().size, 0);
        f.release(ino, fh2).unwrap();
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "log");
        let fh = f
            .open(ino, OpenFlags::WRONLY.with(OpenFlags::APPEND))
            .unwrap();
        f.write(ino, fh, 0, b"one").unwrap();
        // Offset is ignored in append mode.
        f.write(ino, fh, 0, b"two").unwrap();
        let rfh = f.open(ino, OpenFlags::RDONLY).unwrap();
        let mut buf = [0u8; 6];
        f.read(ino, rfh, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"onetwo");
    }

    #[test]
    fn write_through_readonly_handle_is_ebadf() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "r");
        let fh = f.open(ino, OpenFlags::RDONLY).unwrap();
        assert_eq!(f.write(ino, fh, 0, b"x"), Err(Errno::EBADF));
        let wfh = f.open(ino, OpenFlags::WRONLY).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(f.read(ino, wfh, 0, &mut buf), Err(Errno::EBADF));
    }

    #[test]
    fn setgid_cleared_on_chmod_by_non_group_member() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "s");
        // Owner uid 1000, file group 2000; caller in group 3000 only.
        f.setattr(ino, &SetAttr::chown(Uid(1000), Gid(2000)), &root_ctx())
            .unwrap();
        let mut ctx = FsContext::user(1000, 3000);
        ctx.cap_fsetid = false;
        let st = f
            .setattr(ino, &SetAttr::chmod(Mode::new(0o2755)), &ctx)
            .unwrap();
        assert!(!st.mode.is_setgid(), "setgid must be stripped");
        // A group member keeps it.
        let member = FsContext::user(1000, 2000);
        let st = f
            .setattr(ino, &SetAttr::chmod(Mode::new(0o2755)), &member)
            .unwrap();
        assert!(st.mode.is_setgid());
    }

    #[test]
    fn chown_strips_suid() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "s");
        f.setattr(ino, &SetAttr::chmod(Mode::new(0o4755)), &root_ctx())
            .unwrap();
        let ctx = FsContext::user(1000, 1000);
        let st = f
            .setattr(ino, &SetAttr::chown(Uid(1000), Gid(1000)), &ctx)
            .unwrap();
        assert!(!st.mode.is_setuid());
    }

    #[test]
    fn write_strips_suid_sgid() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "s");
        f.setattr(ino, &SetAttr::chmod(Mode::new(0o6755)), &root_ctx())
            .unwrap();
        let fh = f.open(ino, OpenFlags::WRONLY).unwrap();
        f.write(ino, fh, 0, b"x").unwrap();
        let st = f.getattr(ino).unwrap();
        assert!(!st.mode.is_setuid());
        assert!(!st.mode.is_setgid());
    }

    #[test]
    fn setgid_directory_inheritance() {
        let f = fs();
        let d = f
            .mkdir(Ino::ROOT, "shared", Mode::new(0o2775), &root_ctx())
            .unwrap();
        f.setattr(d.ino, &SetAttr::chown(Uid(0), Gid(500)), &root_ctx())
            .unwrap();
        // Re-set setgid (chown by root keeps it because of cap_fsetid).
        f.setattr(d.ino, &SetAttr::chmod(Mode::new(0o2775)), &root_ctx())
            .unwrap();
        let ctx = FsContext::user(1000, 1000);
        let file = f
            .mknod(d.ino, "f", FileType::Regular, Mode::RW_R__R__, 0, &ctx)
            .unwrap();
        assert_eq!(file.gid, Gid(500), "file inherits directory group");
        let sub = f.mkdir(d.ino, "sub", Mode::RWXR_XR_X, &ctx).unwrap();
        assert_eq!(sub.gid, Gid(500));
        assert!(sub.mode.is_setgid(), "subdir inherits setgid bit");
    }

    #[test]
    fn xattr_roundtrip_and_flags() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "x");
        f.setxattr(ino, "user.key", b"v1", XattrFlags::Any).unwrap();
        assert_eq!(f.getxattr(ino, "user.key").unwrap(), b"v1");
        assert_eq!(
            f.setxattr(ino, "user.key", b"v2", XattrFlags::Create),
            Err(Errno::EEXIST)
        );
        f.setxattr(ino, "user.key", b"v2", XattrFlags::Replace)
            .unwrap();
        assert_eq!(f.getxattr(ino, "user.key").unwrap(), b"v2");
        assert_eq!(
            f.setxattr(ino, "user.other", b"", XattrFlags::Replace),
            Err(Errno::ENODATA)
        );
        f.setxattr(ino, "security.capability", b"caps", XattrFlags::Any)
            .unwrap();
        let names = f.listxattr(ino).unwrap();
        assert_eq!(names, vec!["security.capability", "user.key"]);
        f.removexattr(ino, "user.key").unwrap();
        assert_eq!(f.getxattr(ino, "user.key"), Err(Errno::ENODATA));
        assert_eq!(f.removexattr(ino, "user.key"), Err(Errno::ENODATA));
    }

    #[test]
    fn xattr_bad_namespace_rejected() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "x");
        assert_eq!(
            f.setxattr(ino, "bogus.name", b"", XattrFlags::Any),
            Err(Errno::EOPNOTSUPP)
        );
        assert_eq!(
            f.setxattr(ino, "nodot", b"", XattrFlags::Any),
            Err(Errno::EOPNOTSUPP)
        );
    }

    #[test]
    fn enospc_on_small_filesystem() {
        let clock = SimClock::new();
        let f = memfs_with_capacity(DevId(9), clock, 64 * 1024);
        let ino = create_file(&f, Ino::ROOT, "big");
        let fh = f.open(ino, OpenFlags::WRONLY).unwrap();
        let chunk = vec![0u8; 16 * 1024];
        let mut off = 0;
        let mut err = None;
        for _ in 0..10 {
            match f.write(ino, fh, off, &chunk) {
                Ok(n) => off += n as u64,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(Errno::ENOSPC));
        let sf = f.statfs().unwrap();
        assert!(sf.bfree <= 1);
    }

    #[test]
    fn statfs_reflects_usage() {
        let f = fs();
        let before = f.statfs().unwrap();
        let ino = create_file(&f, Ino::ROOT, "f");
        let fh = f.open(ino, OpenFlags::WRONLY).unwrap();
        f.write(ino, fh, 0, &vec![1u8; 64 * 1024]).unwrap();
        let after = f.statfs().unwrap();
        assert_eq!(before.bfree - after.bfree, 16);
    }

    #[test]
    fn readdir_is_sorted_and_complete() {
        let f = fs();
        for name in ["zeta", "alpha", "mid"] {
            create_file(&f, Ino::ROOT, name);
        }
        let names: Vec<String> = f
            .readdir(Ino::ROOT)
            .unwrap()
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn name_validation() {
        let f = fs();
        let ctx = root_ctx();
        let long = "x".repeat(256);
        assert_eq!(
            f.mkdir(Ino::ROOT, &long, Mode::RWXR_XR_X, &ctx),
            Err(Errno::ENAMETOOLONG)
        );
        assert_eq!(
            f.mkdir(Ino::ROOT, "a/b", Mode::RWXR_XR_X, &ctx),
            Err(Errno::EINVAL)
        );
        assert_eq!(
            f.mkdir(Ino::ROOT, ".", Mode::RWXR_XR_X, &ctx),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn fallocate_punch_hole_reclaims_space() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "h");
        let fh = f.open(ino, OpenFlags::RDWR).unwrap();
        f.write(ino, fh, 0, &vec![0xCC; 8 * 4096]).unwrap();
        let before = f.used_bytes();
        f.fallocate(
            ino,
            fh,
            0,
            4 * 4096,
            crate::traits::FallocateMode::PunchHole,
        )
        .unwrap();
        assert!(f.used_bytes() < before);
        // Size unchanged, hole reads zero.
        assert_eq!(f.getattr(ino).unwrap().size, 8 * 4096);
        let mut buf = [1u8; 16];
        f.read(ino, fh, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn timestamps_progress() {
        let clock = SimClock::new();
        let f = memfs(DevId(2), clock.clone());
        let ino = create_file(&f, Ino::ROOT, "t");
        let st0 = f.getattr(ino).unwrap();
        clock.advance(1_000_000);
        let fh = f.open(ino, OpenFlags::RDWR).unwrap();
        f.write(ino, fh, 0, b"x").unwrap();
        let st1 = f.getattr(ino).unwrap();
        assert!(st1.mtime > st0.mtime);
        clock.advance(1_000_000);
        let mut buf = [0u8; 1];
        f.read(ino, fh, 0, &mut buf).unwrap();
        let st2 = f.getattr(ino).unwrap();
        assert!(st2.atime > st1.atime);
        assert_eq!(st2.mtime, st1.mtime);
    }

    #[test]
    fn exportable_handles_supported_natively() {
        let f = fs();
        let ino = create_file(&f, Ino::ROOT, "e");
        assert_eq!(f.export_handle(ino).unwrap(), ino.raw());
    }
}
