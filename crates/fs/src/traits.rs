//! The inode-level filesystem interface.

use bytes::Bytes;
use cntr_types::{
    DevId, Dirent, FileType, Gid, Ino, Mode, OpenFlags, RenameFlags, SetAttr, Stat, Statfs,
    SysResult, Uid,
};

/// Maximum length of one path component, as on Linux (`NAME_MAX`).
pub const MAX_NAME_LEN: usize = 255;

/// An open-file handle issued by a filesystem (`fh` in FUSE terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fh(pub u64);

/// The identity on whose behalf an operation runs.
///
/// Filesystems use it for ownership stamping and for the mode-bit rules that
/// depend on the caller (setgid clearing, setgid directory inheritance).
/// Full permission checking lives in the VFS layer (`cntr-kernel`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsContext {
    /// Effective (filesystem) uid.
    pub uid: Uid,
    /// Effective (filesystem) gid.
    pub gid: Gid,
    /// Supplementary groups.
    pub groups: Vec<Gid>,
    /// Whether the caller holds `CAP_FSETID` (suppresses setgid stripping).
    pub cap_fsetid: bool,
}

impl FsContext {
    /// Root context: uid 0, gid 0, all capabilities.
    pub fn root() -> FsContext {
        FsContext {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            groups: Vec::new(),
            cap_fsetid: true,
        }
    }

    /// An unprivileged user context.
    pub fn user(uid: u32, gid: u32) -> FsContext {
        FsContext {
            uid: Uid(uid),
            gid: Gid(gid),
            groups: Vec::new(),
            cap_fsetid: false,
        }
    }

    /// True if `gid` is the caller's effective or supplementary group.
    pub fn in_group(&self, gid: Gid) -> bool {
        self.gid == gid || self.groups.contains(&gid)
    }
}

/// Flags for `setxattr(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XattrFlags {
    /// Create or replace.
    #[default]
    Any,
    /// `XATTR_CREATE`: fail with `EEXIST` if the attribute exists.
    Create,
    /// `XATTR_REPLACE`: fail with `ENODATA` if the attribute is missing.
    Replace,
}

/// Modes for `fallocate(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallocateMode {
    /// Default: allocate and extend the file if needed.
    Allocate,
    /// `FALLOC_FL_KEEP_SIZE`: allocate without changing the file size.
    KeepSize,
    /// `FALLOC_FL_PUNCH_HOLE | KEEP_SIZE`: deallocate the range, reading as
    /// zeroes.
    PunchHole,
}

/// Feature flags a filesystem reports.
///
/// These encode the implementation limits behind the paper's four xfstests
/// failures (§5.1): CntrFS supports neither `O_DIRECT` (it needs `mmap` to
/// execute binaries, and FUSE makes the two mutually exclusive — test #391),
/// nor exportable file handles (its inodes are not persistent — test #426);
/// it replays operations in the server process so the *caller's*
/// `RLIMIT_FSIZE` is not enforced (test #228), and it delegates POSIX ACLs to
/// the backing filesystem so the setgid-clearing corner case is missed
/// (test #375).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsFeatures {
    /// `open(O_DIRECT)` is honoured.
    pub direct_io: bool,
    /// `name_to_handle_at(2)`-style inode export is possible.
    pub exportable_handles: bool,
    /// Writes enforce the calling process's `RLIMIT_FSIZE`.
    pub enforces_caller_fsize: bool,
    /// `chmod` applies the ACL-aware setgid-clearing rule itself (rather
    /// than delegating ownership decisions to another identity).
    pub native_setgid_clearing: bool,
    /// The filesystem is backed by a block device (some xfstests are skipped
    /// otherwise, matching the paper's "expected our filesystem to be backed
    /// by a block device").
    pub block_backed: bool,
    /// Copy-on-write ioctls (`FICLONE`) are supported.
    pub reflink: bool,
    /// The kernel can cache the `security.capability` xattr for this
    /// filesystem. When false (FUSE), every small write triggers an xattr
    /// lookup round trip — the paper's explanation for the Apache benchmark
    /// overhead (§5.2.2: "the kernel currently neither caches such
    /// attributes nor provides an option for caching them").
    pub xattr_cached: bool,
}

impl FsFeatures {
    /// Everything a well-behaved local disk filesystem supports.
    pub const fn full() -> FsFeatures {
        FsFeatures {
            direct_io: true,
            exportable_handles: true,
            enforces_caller_fsize: true,
            native_setgid_clearing: true,
            block_backed: true,
            reflink: false,
            xattr_cached: true,
        }
    }

    /// tmpfs: everything except block backing and reflink.
    pub const fn tmpfs() -> FsFeatures {
        FsFeatures {
            direct_io: true,
            exportable_handles: true,
            enforces_caller_fsize: true,
            native_setgid_clearing: true,
            block_backed: false,
            reflink: false,
            xattr_cached: true,
        }
    }
}

/// The inode-level filesystem API (the simulated kernel's VFS boundary).
///
/// All methods take `&self`; implementations are internally synchronized and
/// usable from multiple threads, as required by the multithreaded FUSE
/// server (paper §3.3, "Multithreading").
pub trait Filesystem: Send + Sync {
    /// A stable identifier for this filesystem instance (`st_dev`).
    fn fs_id(&self) -> DevId;

    /// Human-readable filesystem type, e.g. `"tmpfs"`, `"ext4"`, `"cntrfs"`.
    fn fs_type(&self) -> &'static str;

    /// Mount-option string as shown in `/proc/<pid>/mounts` (the `opts`
    /// column). Stacked filesystems override this to expose their layering
    /// (overlayfs reports `lowerdir=`/`upperdir=`).
    fn fs_options(&self) -> String {
        "rw".to_string()
    }

    /// The root inode (by convention [`Ino::ROOT`]).
    fn root_ino(&self) -> Ino {
        Ino::ROOT
    }

    /// Feature flags.
    fn features(&self) -> FsFeatures;

    /// Looks up `name` in directory `parent`.
    fn lookup(&self, parent: Ino, name: &str) -> SysResult<Stat>;

    /// Reads the attributes of an inode.
    fn getattr(&self, ino: Ino) -> SysResult<Stat>;

    /// Applies a [`SetAttr`] change-set on behalf of `ctx`.
    fn setattr(&self, ino: Ino, attr: &SetAttr, ctx: &FsContext) -> SysResult<Stat>;

    /// Creates a non-directory node (regular file, fifo, socket, device).
    fn mknod(
        &self,
        parent: Ino,
        name: &str,
        ftype: FileType,
        mode: Mode,
        rdev: u64,
        ctx: &FsContext,
    ) -> SysResult<Stat>;

    /// Creates a directory.
    fn mkdir(&self, parent: Ino, name: &str, mode: Mode, ctx: &FsContext) -> SysResult<Stat>;

    /// Removes a non-directory entry.
    fn unlink(&self, parent: Ino, name: &str) -> SysResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, parent: Ino, name: &str) -> SysResult<()>;

    /// Creates a symbolic link containing `target`.
    fn symlink(&self, parent: Ino, name: &str, target: &str, ctx: &FsContext) -> SysResult<Stat>;

    /// Reads a symbolic link.
    fn readlink(&self, ino: Ino) -> SysResult<String>;

    /// Creates a hard link to `ino` at `newparent/newname`.
    fn link(&self, ino: Ino, newparent: Ino, newname: &str) -> SysResult<Stat>;

    /// Renames `parent/name` to `newparent/newname`.
    fn rename(
        &self,
        parent: Ino,
        name: &str,
        newparent: Ino,
        newname: &str,
        flags: RenameFlags,
    ) -> SysResult<()>;

    /// Opens an inode, returning a file handle.
    fn open(&self, ino: Ino, flags: OpenFlags) -> SysResult<Fh>;

    /// Releases a file handle.
    fn release(&self, ino: Ino, fh: Fh) -> SysResult<()>;

    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read
    /// (0 at or past EOF).
    fn read(&self, ino: Ino, fh: Fh, offset: u64, buf: &mut [u8]) -> SysResult<usize>;

    /// Writes `data` at `offset`; returns bytes written.
    fn write(&self, ino: Ino, fh: Fh, offset: u64, data: &[u8]) -> SysResult<usize>;

    /// Reads up to `len` bytes at `offset` as an owned [`Bytes`] buffer —
    /// the splice data path.
    ///
    /// Filesystems whose storage already holds reference-counted buffers
    /// override this to return a *slice of the stored bytes* (zero copy);
    /// the default reads into a fresh allocation (one copy, exactly what
    /// `read` costs).
    ///
    /// Like `read(2)` this may return **short**: fewer than `len` bytes
    /// even before EOF (e.g. at an internal chunk boundary). An empty
    /// buffer means EOF. Callers wanting exactly `len` bytes must loop.
    fn read_bytes(&self, ino: Ino, fh: Fh, offset: u64, len: usize) -> SysResult<Bytes> {
        let mut buf = vec![0u8; len];
        let n = self.read(ino, fh, offset, &mut buf)?;
        buf.truncate(n);
        Ok(Bytes::from(buf))
    }

    /// Writes an owned [`Bytes`] buffer at `offset` — the splice data path.
    ///
    /// Filesystems whose storage can *retain* the buffer (reference it
    /// instead of copying it) override this; the default delegates to
    /// `write` (one copy). Unlike `read_bytes` this never writes short:
    /// on success all of `data` is written.
    fn write_bytes(&self, ino: Ino, fh: Fh, offset: u64, data: Bytes) -> SysResult<usize> {
        self.write(ino, fh, offset, &data)
    }

    /// Reads until `len` bytes or EOF, preferring a single zero-copy
    /// answer: when one [`Filesystem::read_bytes`] call satisfies the read
    /// (full, or short because of EOF), its buffer is returned unchanged;
    /// only a short read at an internal chunk boundary pays a gather into
    /// one owned buffer. Not meant to be overridden — it exists so the
    /// FUSE server's reply assembly and the page cache's fill path share
    /// one copy of this boundary logic.
    fn read_bytes_gather(&self, ino: Ino, fh: Fh, offset: u64, len: usize) -> SysResult<Bytes> {
        let first = self.read_bytes(ino, fh, offset, len)?;
        if first.len() == len || first.is_empty() {
            return Ok(first);
        }
        // Short: probe whether it was EOF (forward the prefix as-is, still
        // zero-copy) or a chunk boundary (gather the rest).
        let next = self.read_bytes(ino, fh, offset + first.len() as u64, len - first.len())?;
        if next.is_empty() {
            return Ok(first);
        }
        let mut buf = Vec::with_capacity(len);
        buf.extend_from_slice(&first);
        buf.extend_from_slice(&next);
        while buf.len() < len {
            let chunk = self.read_bytes(ino, fh, offset + buf.len() as u64, len - buf.len())?;
            if chunk.is_empty() {
                break;
            }
            buf.extend_from_slice(&chunk);
        }
        Ok(Bytes::from(buf))
    }

    /// Flushes file data (and metadata unless `datasync`) to stable storage.
    fn fsync(&self, ino: Ino, fh: Fh, datasync: bool) -> SysResult<()>;

    /// Lists directory entries (excluding `.` and `..`, which the VFS
    /// synthesizes).
    fn readdir(&self, ino: Ino) -> SysResult<Vec<Dirent>>;

    /// Filesystem-wide statistics.
    fn statfs(&self) -> SysResult<Statfs>;

    /// Reads an extended attribute.
    fn getxattr(&self, ino: Ino, name: &str) -> SysResult<Vec<u8>>;

    /// Sets an extended attribute.
    fn setxattr(&self, ino: Ino, name: &str, value: &[u8], flags: XattrFlags) -> SysResult<()>;

    /// Lists extended attribute names.
    fn listxattr(&self, ino: Ino) -> SysResult<Vec<String>>;

    /// Removes an extended attribute.
    fn removexattr(&self, ino: Ino, name: &str) -> SysResult<()>;

    /// Manipulates file space.
    fn fallocate(
        &self,
        ino: Ino,
        fh: Fh,
        offset: u64,
        len: u64,
        mode: FallocateMode,
    ) -> SysResult<()>;

    /// Drops `nlookup` references the kernel held on `ino` (FUSE `FORGET`).
    /// A no-op for ordinary filesystems.
    fn forget(&self, _ino: Ino, _nlookup: u64) {}

    /// Exports an inode as a persistent handle (`name_to_handle_at`).
    ///
    /// Filesystems whose inodes are not persistent (CntrFS) return
    /// `EOPNOTSUPP` — xfstests #426.
    fn export_handle(&self, ino: Ino) -> SysResult<u64> {
        if self.features().exportable_handles {
            Ok(ino.raw())
        } else {
            Err(cntr_types::Errno::EOPNOTSUPP)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_group_membership() {
        let mut ctx = FsContext::user(1000, 1000);
        assert!(ctx.in_group(Gid(1000)));
        assert!(!ctx.in_group(Gid(5)));
        ctx.groups.push(Gid(5));
        assert!(ctx.in_group(Gid(5)));
    }

    #[test]
    fn root_context_holds_fsetid() {
        assert!(FsContext::root().cap_fsetid);
        assert!(!FsContext::user(1, 1).cap_fsetid);
    }

    #[test]
    fn feature_presets() {
        assert!(FsFeatures::full().block_backed);
        assert!(!FsFeatures::tmpfs().block_backed);
        assert!(FsFeatures::tmpfs().direct_io);
    }
}
