//! `NodeFs` — one implementation of POSIX filesystem semantics, shared by
//! every concrete filesystem in the workspace.
//!
//! The design follows the kernel split the paper's evaluation leans on:
//! *semantics* (names, links, permissions, timestamps — what xfstests
//! checks) are independent of *storage* (where file bytes live — what the
//! performance model charges for). `NodeFs<S>` owns the former and delegates
//! the latter to a [`FileStore`].

use crate::store::FileStore;
use crate::traits::{
    FallocateMode, Fh, Filesystem, FsContext, FsFeatures, XattrFlags, MAX_NAME_LEN,
};
use bytes::Bytes;
use cntr_blockdev::BLOCK_SIZE;
use cntr_types::{
    DevId, Dirent, Errno, FileType, Gid, Ino, Mode, OpenFlags, RenameFlags, SetAttr, SimClock,
    Stat, Statfs, SysResult, Timespec, Uid,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// Maximum hard links per inode (ext4's limit).
pub const MAX_LINKS: u32 = 65_000;

/// Maximum size of one xattr value (Linux: 64 KiB on ext4).
pub const MAX_XATTR_SIZE: usize = 64 * 1024;

/// Inode metadata.
#[derive(Debug, Clone)]
struct Meta {
    ftype: FileType,
    mode: Mode,
    uid: Uid,
    gid: Gid,
    nlink: u32,
    rdev: u64,
    size: u64,
    atime: Timespec,
    mtime: Timespec,
    ctime: Timespec,
}

/// Inode content.
enum NodeKind<C> {
    File(C),
    Dir(BTreeMap<String, Ino>),
    Symlink(String),
    /// Fifo, socket, char/block device: no content of their own.
    Other,
}

struct Node<C> {
    meta: Meta,
    kind: NodeKind<C>,
    xattrs: BTreeMap<String, Vec<u8>>,
    open_count: u32,
    /// nlink reached zero while open; free on final release.
    unlinked: bool,
}

impl<C> Node<C> {
    fn dir(&self) -> SysResult<&BTreeMap<String, Ino>> {
        match &self.kind {
            NodeKind::Dir(d) => Ok(d),
            _ => Err(Errno::ENOTDIR),
        }
    }

    fn dir_mut(&mut self) -> SysResult<&mut BTreeMap<String, Ino>> {
        match &mut self.kind {
            NodeKind::Dir(d) => Ok(d),
            _ => Err(Errno::ENOTDIR),
        }
    }
}

struct HandleInfo {
    ino: Ino,
    flags: OpenFlags,
}

struct FsState<C> {
    inodes: HashMap<Ino, Node<C>>,
    handles: HashMap<Fh, HandleInfo>,
    next_ino: u64,
    next_fh: u64,
    used_bytes: u64,
}

/// A POSIX filesystem over a pluggable [`FileStore`].
///
/// Thread-safe: a single internal mutex guards all metadata (the real
/// kernel's per-inode locking is not reproduced; contention effects are
/// modelled in the cost layer instead).
pub struct NodeFs<S: FileStore> {
    dev_id: DevId,
    fs_type: &'static str,
    features: FsFeatures,
    capacity: u64,
    clock: SimClock,
    store: S,
    state: Mutex<FsState<S::Content>>,
}

impl<S: FileStore> NodeFs<S> {
    /// Creates a filesystem with an empty root directory (mode 0755, root-owned).
    pub fn new(
        dev_id: DevId,
        fs_type: &'static str,
        features: FsFeatures,
        capacity: u64,
        clock: SimClock,
        store: S,
    ) -> NodeFs<S> {
        let now = clock.now();
        let mut inodes = HashMap::new();
        inodes.insert(
            Ino::ROOT,
            Node {
                meta: Meta {
                    ftype: FileType::Directory,
                    mode: Mode::RWXR_XR_X,
                    uid: Uid::ROOT,
                    gid: Gid::ROOT,
                    nlink: 2,
                    rdev: 0,
                    size: 0,
                    atime: now,
                    mtime: now,
                    ctime: now,
                },
                kind: NodeKind::Dir(BTreeMap::new()),
                xattrs: BTreeMap::new(),
                open_count: 0,
                unlinked: false,
            },
        );
        NodeFs {
            dev_id,
            fs_type,
            features,
            capacity,
            clock,
            store,
            state: Mutex::new_class(
                "fs.node_state",
                FsState {
                    inodes,
                    handles: HashMap::new(),
                    next_ino: 2,
                    next_fh: 1,
                    used_bytes: 0,
                },
            ),
        }
    }

    /// The store (for device statistics etc.).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Number of live inodes (diagnostics / tests).
    pub fn inode_count(&self) -> usize {
        self.state.lock().inodes.len()
    }

    /// Bytes currently allocated by file contents.
    pub fn used_bytes(&self) -> u64 {
        self.state.lock().used_bytes
    }

    fn stat_of(&self, ino: Ino, meta: &Meta) -> Stat {
        Stat {
            dev: self.dev_id,
            ino,
            ftype: meta.ftype,
            mode: meta.mode,
            nlink: meta.nlink,
            uid: meta.uid,
            gid: meta.gid,
            rdev: meta.rdev,
            size: meta.size,
            blocks: meta.size.div_ceil(512),
            blksize: BLOCK_SIZE as u32,
            atime: meta.atime,
            mtime: meta.mtime,
            ctime: meta.ctime,
        }
    }

    fn validate_name(name: &str) -> SysResult<()> {
        if name.is_empty() || name == "." || name == ".." {
            return Err(Errno::EINVAL);
        }
        if name.contains('/') || name.contains('\0') {
            return Err(Errno::EINVAL);
        }
        if name.len() > MAX_NAME_LEN {
            return Err(Errno::ENAMETOOLONG);
        }
        Ok(())
    }

    /// Creates a node under `parent`, honouring setgid-directory inheritance.
    #[expect(clippy::too_many_arguments, reason = "mirrors the mknod surface")]
    fn create_node(
        &self,
        parent: Ino,
        name: &str,
        ftype: FileType,
        mode: Mode,
        rdev: u64,
        symlink_target: Option<&str>,
        ctx: &FsContext,
    ) -> SysResult<Stat> {
        Self::validate_name(name)?;
        let now = self.clock.now();
        let mut st = self.state.lock();
        let parent_node = st.inodes.get(&parent).ok_or(Errno::ENOENT)?;
        let pdir = parent_node.dir()?;
        if pdir.contains_key(name) {
            return Err(Errno::EEXIST);
        }
        let (pgid, parent_setgid) = (parent_node.meta.gid, parent_node.meta.mode.is_setgid());

        // setgid directory: children inherit the directory's group;
        // subdirectories also inherit the setgid bit.
        let gid = if parent_setgid { pgid } else { ctx.gid };
        let mode = if parent_setgid && ftype == FileType::Directory {
            Mode::new(mode.bits() | Mode::SETGID)
        } else {
            mode
        };

        let ino = Ino(st.next_ino);
        st.next_ino += 1;
        let kind = match ftype {
            FileType::Regular => NodeKind::File(S::Content::default()),
            FileType::Directory => NodeKind::Dir(BTreeMap::new()),
            FileType::Symlink => NodeKind::Symlink(symlink_target.unwrap_or_default().to_string()),
            _ => NodeKind::Other,
        };
        let nlink = if ftype == FileType::Directory { 2 } else { 1 };
        let size = symlink_target.map_or(0, |t| t.len() as u64);
        let node = Node {
            meta: Meta {
                ftype,
                mode,
                uid: ctx.uid,
                gid,
                nlink,
                rdev,
                size,
                atime: now,
                mtime: now,
                ctime: now,
            },
            kind,
            xattrs: BTreeMap::new(),
            open_count: 0,
            unlinked: false,
        };
        st.inodes.insert(ino, node);
        let parent_node = st.inodes.get_mut(&parent).expect("checked above");
        parent_node.dir_mut()?.insert(name.to_string(), ino);
        parent_node.meta.mtime = now;
        parent_node.meta.ctime = now;
        if ftype == FileType::Directory {
            parent_node.meta.nlink += 1;
        }
        let meta = st.inodes[&ino].meta.clone();
        Ok(self.stat_of(ino, &meta))
    }

    /// Frees an inode whose last link and last open handle are gone.
    fn reap(&self, st: &mut FsState<S::Content>, ino: Ino) {
        if let Some(mut node) = st.inodes.remove(&ino) {
            if let NodeKind::File(content) = &mut node.kind {
                let freed = self.store.allocated_bytes(content);
                self.store.dealloc(content);
                st.used_bytes = st.used_bytes.saturating_sub(freed);
            }
        }
    }

    /// Drops one link on `ino`; frees it if fully unreferenced.
    fn drop_link(&self, st: &mut FsState<S::Content>, ino: Ino, is_dir: bool) {
        let now = self.clock.now();
        let Some(node) = st.inodes.get_mut(&ino) else {
            return;
        };
        if is_dir {
            node.meta.nlink = 0;
        } else {
            node.meta.nlink = node.meta.nlink.saturating_sub(1);
        }
        node.meta.ctime = now;
        if node.meta.nlink == 0 {
            if node.open_count > 0 {
                node.unlinked = true;
            } else {
                self.reap(st, ino);
            }
        }
    }

    /// True if `ancestor` is on the path from `node` up to the root.
    fn is_ancestor(st: &FsState<S::Content>, ancestor: Ino, mut node: Ino) -> bool {
        // Walk up via linear search of parents (directories have exactly one
        // parent; the map is small enough that a reverse scan is fine).
        let mut hops = 0;
        while node != Ino::ROOT && hops < 4096 {
            if node == ancestor {
                return true;
            }
            let mut parent = None;
            for (&pino, pnode) in &st.inodes {
                if let NodeKind::Dir(entries) = &pnode.kind {
                    if entries.values().any(|&c| c == node) {
                        parent = Some(pino);
                        break;
                    }
                }
            }
            match parent {
                Some(p) => node = p,
                None => return false,
            }
            hops += 1;
        }
        node == ancestor
    }

    fn truncate_file(
        &self,
        st: &mut FsState<S::Content>,
        ino: Ino,
        new_size: u64,
    ) -> SysResult<()> {
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        match &mut node.kind {
            NodeKind::File(content) => {
                let before = self.store.allocated_bytes(content);
                if new_size < node.meta.size {
                    self.store.truncate(content, new_size);
                }
                let after = self.store.allocated_bytes(content);
                node.meta.size = new_size;
                let now = self.clock.now();
                node.meta.mtime = now;
                node.meta.ctime = now;
                st.used_bytes = st.used_bytes.saturating_sub(before).saturating_add(after);
                Ok(())
            }
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Shared body of `write`/`write_bytes`: handle validation, O_APPEND
    /// resolution, the ENOSPC pre-check, and the size/mtime/suid updates.
    /// `store_write` performs the actual byte transfer (copying or
    /// retaining) at the resolved offset.
    fn write_with(
        &self,
        ino: Ino,
        fh: Fh,
        offset: u64,
        len: usize,
        store_write: impl FnOnce(&S, &mut S::Content, u64),
    ) -> SysResult<usize> {
        let mut st = self.state.lock();
        let offset = {
            let info = st.handles.get(&fh).ok_or(Errno::EBADF)?;
            if info.ino != ino {
                return Err(Errno::EBADF);
            }
            if !info.flags.mode.writable() {
                return Err(Errno::EBADF);
            }
            if info.flags.contains(OpenFlags::APPEND) {
                st.inodes.get(&ino).ok_or(Errno::ENOENT)?.meta.size
            } else {
                offset
            }
        };
        let now = self.clock.now();
        let used = st.used_bytes;
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        match &mut node.kind {
            NodeKind::File(content) => {
                let before = self.store.allocated_bytes(content);
                // Conservative ENOSPC pre-check: a write can allocate at most
                // len + one page of slack.
                let upper = len as u64 + BLOCK_SIZE as u64;
                if used + upper > self.capacity {
                    let exact_after = {
                        // Compute precisely only when near the limit.
                        let end = offset + len as u64;
                        let pages = end.div_ceil(BLOCK_SIZE as u64) - offset / BLOCK_SIZE as u64;
                        before + pages * BLOCK_SIZE as u64
                    };
                    if used.saturating_sub(before) + exact_after > self.capacity {
                        return Err(Errno::ENOSPC);
                    }
                }
                store_write(&self.store, content, offset);
                let after = self.store.allocated_bytes(content);
                st.used_bytes = used.saturating_sub(before).saturating_add(after);
                let node = st.inodes.get_mut(&ino).expect("checked");
                node.meta.size = node.meta.size.max(offset + len as u64);
                node.meta.mtime = now;
                node.meta.ctime = now;
                // Writes strip setuid/setgid (unprivileged-writer model).
                node.meta.mode = node.meta.mode.clear_suid_sgid();
                Ok(len)
            }
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }
}

impl<S: FileStore> Filesystem for NodeFs<S> {
    fn fs_id(&self) -> DevId {
        self.dev_id
    }

    fn fs_type(&self) -> &'static str {
        self.fs_type
    }

    fn features(&self) -> FsFeatures {
        self.features
    }

    fn lookup(&self, parent: Ino, name: &str) -> SysResult<Stat> {
        let st = self.state.lock();
        let pnode = st.inodes.get(&parent).ok_or(Errno::ENOENT)?;
        if name == "." {
            let meta = pnode.meta.clone();
            pnode.dir()?;
            return Ok(self.stat_of(parent, &meta));
        }
        let dir = pnode.dir()?;
        if name.len() > MAX_NAME_LEN {
            return Err(Errno::ENAMETOOLONG);
        }
        let &ino = dir.get(name).ok_or(Errno::ENOENT)?;
        let meta = st.inodes[&ino].meta.clone();
        Ok(self.stat_of(ino, &meta))
    }

    fn getattr(&self, ino: Ino) -> SysResult<Stat> {
        let st = self.state.lock();
        let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
        Ok(self.stat_of(ino, &node.meta))
    }

    fn setattr(&self, ino: Ino, attr: &SetAttr, ctx: &FsContext) -> SysResult<Stat> {
        if let Some(size) = attr.size {
            let mut st = self.state.lock();
            self.truncate_file(&mut st, ino, size)?;
        }
        let now = self.clock.now();
        let mut st = self.state.lock();
        let native_clear = self.features.native_setgid_clearing;
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        if let Some(mode) = attr.mode {
            let mut mode = mode;
            // The setgid-clearing rule at the heart of xfstests #375: chmod
            // by a caller that is not in the file's owning group (and lacks
            // CAP_FSETID) must not leave the setgid bit set. CntrFS delegates
            // this decision to the backing filesystem under the *server's*
            // identity and therefore misses it.
            if native_clear && mode.is_setgid() && !ctx.cap_fsetid && !ctx.in_group(node.meta.gid) {
                mode = mode.clear_setgid();
            }
            node.meta.mode = mode;
            node.meta.ctime = now;
        }
        if attr.uid.is_some() || attr.gid.is_some() {
            if let Some(uid) = attr.uid {
                node.meta.uid = uid;
            }
            if let Some(gid) = attr.gid {
                node.meta.gid = gid;
            }
            // chown strips setuid/setgid for unprivileged callers.
            if !ctx.cap_fsetid && node.meta.ftype == FileType::Regular {
                node.meta.mode = node.meta.mode.clear_suid_sgid();
            }
            node.meta.ctime = now;
        }
        if let Some(atime) = attr.atime {
            node.meta.atime = atime;
            node.meta.ctime = now;
        }
        if let Some(mtime) = attr.mtime {
            node.meta.mtime = mtime;
            node.meta.ctime = now;
        }
        if attr.size.is_some() {
            node.meta.ctime = now;
        }
        let meta = node.meta.clone();
        Ok(self.stat_of(ino, &meta))
    }

    fn mknod(
        &self,
        parent: Ino,
        name: &str,
        ftype: FileType,
        mode: Mode,
        rdev: u64,
        ctx: &FsContext,
    ) -> SysResult<Stat> {
        if ftype == FileType::Directory {
            return Err(Errno::EINVAL);
        }
        self.create_node(parent, name, ftype, mode, rdev, None, ctx)
    }

    fn mkdir(&self, parent: Ino, name: &str, mode: Mode, ctx: &FsContext) -> SysResult<Stat> {
        self.create_node(parent, name, FileType::Directory, mode, 0, None, ctx)
    }

    fn unlink(&self, parent: Ino, name: &str) -> SysResult<()> {
        let mut st = self.state.lock();
        let pnode = st.inodes.get(&parent).ok_or(Errno::ENOENT)?;
        let dir = pnode.dir()?;
        let &ino = dir.get(name).ok_or(Errno::ENOENT)?;
        if st.inodes[&ino].meta.ftype == FileType::Directory {
            return Err(Errno::EISDIR);
        }
        let now = self.clock.now();
        let pnode = st.inodes.get_mut(&parent).expect("checked");
        pnode.dir_mut()?.remove(name);
        pnode.meta.mtime = now;
        pnode.meta.ctime = now;
        self.drop_link(&mut st, ino, false);
        Ok(())
    }

    fn rmdir(&self, parent: Ino, name: &str) -> SysResult<()> {
        let mut st = self.state.lock();
        let pnode = st.inodes.get(&parent).ok_or(Errno::ENOENT)?;
        let dir = pnode.dir()?;
        let &ino = dir.get(name).ok_or(Errno::ENOENT)?;
        let victim = &st.inodes[&ino];
        match victim.dir() {
            Ok(entries) if !entries.is_empty() => return Err(Errno::ENOTEMPTY),
            Ok(_) => {}
            Err(e) => return Err(e),
        }
        let now = self.clock.now();
        let pnode = st.inodes.get_mut(&parent).expect("checked");
        pnode.dir_mut()?.remove(name);
        pnode.meta.nlink -= 1;
        pnode.meta.mtime = now;
        pnode.meta.ctime = now;
        self.drop_link(&mut st, ino, true);
        Ok(())
    }

    fn symlink(&self, parent: Ino, name: &str, target: &str, ctx: &FsContext) -> SysResult<Stat> {
        self.create_node(
            parent,
            name,
            FileType::Symlink,
            Mode::RWXRWXRWX,
            0,
            Some(target),
            ctx,
        )
    }

    fn readlink(&self, ino: Ino) -> SysResult<String> {
        let st = self.state.lock();
        let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
        match &node.kind {
            NodeKind::Symlink(t) => Ok(t.clone()),
            _ => Err(Errno::EINVAL),
        }
    }

    fn link(&self, ino: Ino, newparent: Ino, newname: &str) -> SysResult<Stat> {
        Self::validate_name(newname)?;
        let now = self.clock.now();
        let mut st = self.state.lock();
        let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
        if node.meta.ftype == FileType::Directory {
            return Err(Errno::EPERM);
        }
        if node.meta.nlink >= MAX_LINKS {
            return Err(Errno::EMLINK);
        }
        {
            let pnode = st.inodes.get(&newparent).ok_or(Errno::ENOENT)?;
            if pnode.dir()?.contains_key(newname) {
                return Err(Errno::EEXIST);
            }
        }
        let pnode = st.inodes.get_mut(&newparent).expect("checked");
        pnode.dir_mut()?.insert(newname.to_string(), ino);
        pnode.meta.mtime = now;
        pnode.meta.ctime = now;
        let node = st.inodes.get_mut(&ino).expect("checked");
        node.meta.nlink += 1;
        node.meta.ctime = now;
        let meta = node.meta.clone();
        Ok(self.stat_of(ino, &meta))
    }

    fn rename(
        &self,
        parent: Ino,
        name: &str,
        newparent: Ino,
        newname: &str,
        flags: RenameFlags,
    ) -> SysResult<()> {
        Self::validate_name(name)?;
        Self::validate_name(newname)?;
        let now = self.clock.now();
        let mut st = self.state.lock();

        let src_ino = *st
            .inodes
            .get(&parent)
            .ok_or(Errno::ENOENT)?
            .dir()?
            .get(name)
            .ok_or(Errno::ENOENT)?;
        let dst_existing = st
            .inodes
            .get(&newparent)
            .ok_or(Errno::ENOENT)?
            .dir()?
            .get(newname)
            .copied();

        if parent == newparent && name == newname {
            return Ok(());
        }
        if flags.noreplace && dst_existing.is_some() {
            return Err(Errno::EEXIST);
        }
        let src_is_dir = st.inodes[&src_ino].meta.ftype == FileType::Directory;

        if flags.exchange {
            let dst_ino = dst_existing.ok_or(Errno::ENOENT)?;
            // Swapping directories into each other's subtrees is impossible
            // by construction of a swap, but a dir must not become its own
            // ancestor via the other path.
            if src_is_dir && Self::is_ancestor(&st, src_ino, newparent) {
                return Err(Errno::EINVAL);
            }
            let dst_is_dir = st.inodes[&dst_ino].meta.ftype == FileType::Directory;
            if dst_is_dir && Self::is_ancestor(&st, dst_ino, parent) {
                return Err(Errno::EINVAL);
            }
            st.inodes
                .get_mut(&parent)
                .expect("checked")
                .dir_mut()?
                .insert(name.to_string(), dst_ino);
            st.inodes
                .get_mut(&newparent)
                .expect("checked")
                .dir_mut()?
                .insert(newname.to_string(), src_ino);
            if parent != newparent && src_is_dir != dst_is_dir {
                // Directory count moved between the two parents.
                let (inc, dec) = if src_is_dir {
                    (parent, newparent)
                } else {
                    (newparent, parent)
                };
                st.inodes.get_mut(&dec).expect("checked").meta.nlink -= 1;
                st.inodes.get_mut(&inc).expect("checked").meta.nlink += 1;
            }
            for p in [parent, newparent] {
                let n = st.inodes.get_mut(&p).expect("checked");
                n.meta.mtime = now;
                n.meta.ctime = now;
            }
            return Ok(());
        }

        // Moving a directory under its own descendant creates a cycle.
        if src_is_dir && (src_ino == newparent || Self::is_ancestor(&st, src_ino, newparent)) {
            return Err(Errno::EINVAL);
        }

        if let Some(dst_ino) = dst_existing {
            if dst_ino == src_ino {
                // Hard links to the same inode: rename is a no-op that
                // removes the source name (POSIX).
                st.inodes
                    .get_mut(&parent)
                    .expect("checked")
                    .dir_mut()?
                    .remove(name);
                self.drop_link(&mut st, src_ino, false);
                return Ok(());
            }
            let dst_is_dir = st.inodes[&dst_ino].meta.ftype == FileType::Directory;
            match (src_is_dir, dst_is_dir) {
                (false, true) => return Err(Errno::EISDIR),
                (true, false) => return Err(Errno::ENOTDIR),
                (true, true) => {
                    if !st.inodes[&dst_ino].dir()?.is_empty() {
                        return Err(Errno::ENOTEMPTY);
                    }
                }
                (false, false) => {}
            }
            // Replace: remove the target's link.
            st.inodes
                .get_mut(&newparent)
                .expect("checked")
                .dir_mut()?
                .remove(newname);
            if dst_is_dir {
                st.inodes.get_mut(&newparent).expect("checked").meta.nlink -= 1;
            }
            self.drop_link(&mut st, dst_ino, dst_is_dir);
        }

        st.inodes
            .get_mut(&parent)
            .expect("checked")
            .dir_mut()?
            .remove(name);
        st.inodes
            .get_mut(&newparent)
            .expect("checked")
            .dir_mut()?
            .insert(newname.to_string(), src_ino);
        if src_is_dir && parent != newparent {
            st.inodes.get_mut(&parent).expect("checked").meta.nlink -= 1;
            st.inodes.get_mut(&newparent).expect("checked").meta.nlink += 1;
        }
        for p in [parent, newparent] {
            let n = st.inodes.get_mut(&p).expect("checked");
            n.meta.mtime = now;
            n.meta.ctime = now;
        }
        let n = st.inodes.get_mut(&src_ino).expect("checked");
        n.meta.ctime = now;
        Ok(())
    }

    fn open(&self, ino: Ino, flags: OpenFlags) -> SysResult<Fh> {
        if flags.contains(OpenFlags::DIRECT) && !self.features.direct_io {
            // CntrFS: direct I/O and mmap support are mutually exclusive in
            // FUSE; CNTR chose mmap (paper §5.1, test #391).
            return Err(Errno::EINVAL);
        }
        let mut st = self.state.lock();
        let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
        if flags.contains(OpenFlags::DIRECTORY) && node.meta.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        if node.meta.ftype == FileType::Directory && flags.mode.writable() {
            return Err(Errno::EISDIR);
        }
        if flags.contains(OpenFlags::TRUNC)
            && flags.mode.writable()
            && node.meta.ftype == FileType::Regular
        {
            self.truncate_file(&mut st, ino, 0)?;
        }
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        node.open_count += 1;
        let fh = Fh(st.next_fh);
        st.next_fh += 1;
        st.handles.insert(fh, HandleInfo { ino, flags });
        Ok(fh)
    }

    fn release(&self, ino: Ino, fh: Fh) -> SysResult<()> {
        let mut st = self.state.lock();
        let info = st.handles.remove(&fh).ok_or(Errno::EBADF)?;
        if info.ino != ino {
            return Err(Errno::EBADF);
        }
        if let Some(node) = st.inodes.get_mut(&ino) {
            node.open_count = node.open_count.saturating_sub(1);
            if node.open_count == 0 && node.unlinked {
                self.reap(&mut st, ino);
            }
        }
        Ok(())
    }

    fn read(&self, ino: Ino, fh: Fh, offset: u64, buf: &mut [u8]) -> SysResult<usize> {
        let mut st = self.state.lock();
        {
            let info = st.handles.get(&fh).ok_or(Errno::EBADF)?;
            if info.ino != ino {
                return Err(Errno::EBADF);
            }
            if !info.flags.mode.readable() {
                return Err(Errno::EBADF);
            }
        }
        let now = self.clock.now();
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        let size = node.meta.size;
        if offset >= size {
            return Ok(0);
        }
        let n = (buf.len() as u64).min(size - offset) as usize;
        match &node.kind {
            NodeKind::File(content) => {
                self.store.read(content, offset, &mut buf[..n]);
                node.meta.atime = now;
                Ok(n)
            }
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    fn write(&self, ino: Ino, fh: Fh, offset: u64, data: &[u8]) -> SysResult<usize> {
        self.write_with(ino, fh, offset, data.len(), |store, content, off| {
            store.write(content, off, data);
        })
    }

    fn read_bytes(&self, ino: Ino, fh: Fh, offset: u64, len: usize) -> SysResult<Bytes> {
        let mut st = self.state.lock();
        {
            let info = st.handles.get(&fh).ok_or(Errno::EBADF)?;
            if info.ino != ino || !info.flags.mode.readable() {
                return Err(Errno::EBADF);
            }
        }
        let now = self.clock.now();
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        let size = node.meta.size;
        if offset >= size || len == 0 {
            return Ok(Bytes::new());
        }
        let n = (len as u64).min(size - offset) as usize;
        match &node.kind {
            NodeKind::File(content) => {
                // Zero-copy when the store can hand out a slice of what it
                // already holds; otherwise a single gather into a fresh
                // buffer (the same copy `read` pays).
                let data = match self.store.read_bytes(content, offset, n) {
                    Some(b) => {
                        debug_assert!(!b.is_empty() && b.len() <= n);
                        b
                    }
                    None => {
                        let mut buf = vec![0u8; n];
                        self.store.read(content, offset, &mut buf);
                        Bytes::from(buf)
                    }
                };
                node.meta.atime = now;
                Ok(data)
            }
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    fn write_bytes(&self, ino: Ino, fh: Fh, offset: u64, data: Bytes) -> SysResult<usize> {
        self.write_with(ino, fh, offset, data.len(), |store, content, off| {
            store.write_bytes(content, off, &data);
        })
    }

    fn fsync(&self, _ino: Ino, _fh: Fh, _datasync: bool) -> SysResult<()> {
        self.store.sync();
        Ok(())
    }

    fn readdir(&self, ino: Ino) -> SysResult<Vec<Dirent>> {
        let st = self.state.lock();
        let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
        let dir = node.dir()?;
        Ok(dir
            .iter()
            .map(|(name, &ino)| Dirent {
                ino,
                name: name.clone(),
                ftype: st.inodes[&ino].meta.ftype,
            })
            .collect())
    }

    fn statfs(&self) -> SysResult<Statfs> {
        let st = self.state.lock();
        let blocks = self.capacity / BLOCK_SIZE as u64;
        let used = st.used_bytes / BLOCK_SIZE as u64;
        let files = blocks.max(1024);
        Ok(Statfs {
            bsize: BLOCK_SIZE as u32,
            blocks,
            bfree: blocks.saturating_sub(used),
            bavail: blocks.saturating_sub(used),
            files,
            ffree: files.saturating_sub(st.inodes.len() as u64),
            namelen: MAX_NAME_LEN as u32,
        })
    }

    fn getxattr(&self, ino: Ino, name: &str) -> SysResult<Vec<u8>> {
        let st = self.state.lock();
        let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
        node.xattrs.get(name).cloned().ok_or(Errno::ENODATA)
    }

    fn setxattr(&self, ino: Ino, name: &str, value: &[u8], flags: XattrFlags) -> SysResult<()> {
        if !name.contains('.') {
            return Err(Errno::EOPNOTSUPP);
        }
        let prefix = name.split('.').next().unwrap_or_default();
        if !matches!(prefix, "user" | "trusted" | "security" | "system") {
            return Err(Errno::EOPNOTSUPP);
        }
        if value.len() > MAX_XATTR_SIZE {
            return Err(Errno::ERANGE);
        }
        let now = self.clock.now();
        let mut st = self.state.lock();
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        match flags {
            XattrFlags::Create if node.xattrs.contains_key(name) => return Err(Errno::EEXIST),
            XattrFlags::Replace if !node.xattrs.contains_key(name) => return Err(Errno::ENODATA),
            _ => {}
        }
        node.xattrs.insert(name.to_string(), value.to_vec());
        node.meta.ctime = now;
        Ok(())
    }

    fn listxattr(&self, ino: Ino) -> SysResult<Vec<String>> {
        let st = self.state.lock();
        let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
        Ok(node.xattrs.keys().cloned().collect())
    }

    fn removexattr(&self, ino: Ino, name: &str) -> SysResult<()> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        if node.xattrs.remove(name).is_none() {
            return Err(Errno::ENODATA);
        }
        node.meta.ctime = now;
        Ok(())
    }

    fn fallocate(
        &self,
        ino: Ino,
        fh: Fh,
        offset: u64,
        len: u64,
        mode: FallocateMode,
    ) -> SysResult<()> {
        if len == 0 {
            return Err(Errno::EINVAL);
        }
        let mut st = self.state.lock();
        {
            let info = st.handles.get(&fh).ok_or(Errno::EBADF)?;
            if info.ino != ino || !info.flags.mode.writable() {
                return Err(Errno::EBADF);
            }
        }
        let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
        match &mut node.kind {
            NodeKind::File(content) => match mode {
                FallocateMode::Allocate => {
                    node.meta.size = node.meta.size.max(offset + len);
                    Ok(())
                }
                FallocateMode::KeepSize => Ok(()),
                FallocateMode::PunchHole => {
                    let before = self.store.allocated_bytes(content);
                    self.store.punch_hole(content, offset, len);
                    let after = self.store.allocated_bytes(content);
                    st.used_bytes = st.used_bytes.saturating_sub(before - after.min(before));
                    Ok(())
                }
            },
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }
}
