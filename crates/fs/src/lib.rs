//! Filesystem implementations for the CNTR reproduction.
//!
//! This crate defines the [`Filesystem`] trait — the inode-level API every
//! filesystem in the workspace implements (analogous to the kernel's VFS
//! interface / the FUSE lowlevel API) — and two concrete filesystems:
//!
//! * [`MemFs`] — a tmpfs-like in-memory filesystem. The paper runs xfstests
//!   with CntrFS mounted *on top of tmpfs* (§5.1); `MemFs` plays that role.
//! * [`DiskFs`] — an ext4-like filesystem whose file contents live on a
//!   simulated [`cntr_blockdev::BlockDevice`]. The paper's native baseline is
//!   ext4 on EBS gp2 (§5.2); `DiskFs` plays that role.
//!
//! Both share one implementation of POSIX semantics ([`nodefs::NodeFs`]),
//! parameterized over a [`store::FileStore`] that provides file content
//! storage. This keeps rename/link/unlink/xattr/permission behaviour — the
//! part xfstests exercises — identical across backing stores.

pub mod diskfs;
pub mod memfs;
pub mod nodefs;
pub mod store;
mod traits;

pub use diskfs::DiskFs;
pub use memfs::MemFs;
pub use traits::{FallocateMode, Fh, Filesystem, FsContext, FsFeatures, XattrFlags, MAX_NAME_LEN};
