//! `DiskFs` — the ext4 of the simulation.
//!
//! The paper's native baseline is "a 100GB EBS volume of type GP2 formatted
//! with ext4 ... mounted with default options" (§5.2). `DiskFs` keeps
//! metadata in memory (a fully warmed cache, the favourable case for the
//! native baseline) and stores file contents on a simulated
//! [`BlockDevice`], so data reads and writes consume virtual disk time.

use crate::nodefs::NodeFs;
use crate::store::DiskStore;
use crate::traits::FsFeatures;
use cntr_blockdev::{BlockDevice, DiskModel};
use cntr_types::{DevId, SimClock};
use std::sync::Arc;

/// An ext4-like filesystem over a simulated block device.
pub type DiskFs = NodeFs<DiskStore>;

/// Creates a [`DiskFs`] on a fresh gp2-like device, mirroring the paper's
/// 100 GB volume.
pub fn diskfs_gp2(dev_id: DevId, clock: SimClock) -> Arc<DiskFs> {
    let device = BlockDevice::new(DiskModel::gp2(), clock.clone());
    diskfs_on(dev_id, clock, device, 100 << 30)
}

/// Creates a [`DiskFs`] over an existing device with an explicit capacity.
pub fn diskfs_on(
    dev_id: DevId,
    clock: SimClock,
    device: Arc<BlockDevice>,
    capacity: u64,
) -> Arc<DiskFs> {
    Arc::new(NodeFs::new(
        dev_id,
        "ext4",
        FsFeatures::full(),
        capacity,
        clock,
        DiskStore::new(device),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Filesystem, FsContext};
    use cntr_types::{FileType, Ino, Mode, OpenFlags};

    #[test]
    fn data_roundtrip_on_disk() {
        let clock = SimClock::new();
        let f = diskfs_gp2(DevId(3), clock.clone());
        let st = f
            .mknod(
                Ino::ROOT,
                "file",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &FsContext::root(),
            )
            .unwrap();
        let fh = f.open(st.ino, OpenFlags::RDWR).unwrap();
        let data: Vec<u8> = (0..50_000).map(|i| (i % 241) as u8).collect();
        f.write(st.ino, fh, 0, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        assert_eq!(f.read(st.ino, fh, 0, &mut back).unwrap(), data.len());
        assert_eq!(back, data);
        assert!(clock.now().as_nanos() > 0, "disk I/O consumed virtual time");
    }

    #[test]
    fn device_stats_visible_through_store() {
        let clock = SimClock::new();
        let f = diskfs_gp2(DevId(3), clock);
        let st = f
            .mknod(
                Ino::ROOT,
                "file",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &FsContext::root(),
            )
            .unwrap();
        let fh = f.open(st.ino, OpenFlags::WRONLY).unwrap();
        f.write(st.ino, fh, 0, &[0u8; 8192]).unwrap();
        let snap = f.store().device().stats();
        assert!(snap.writes > 0);
        assert_eq!(snap.bytes_written, 8192);
    }

    #[test]
    fn unlink_releases_device_blocks() {
        let clock = SimClock::new();
        let f = diskfs_gp2(DevId(3), clock);
        let st = f
            .mknod(
                Ino::ROOT,
                "file",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &FsContext::root(),
            )
            .unwrap();
        let fh = f.open(st.ino, OpenFlags::WRONLY).unwrap();
        f.write(st.ino, fh, 0, &[1u8; 16 * 4096]).unwrap();
        f.release(st.ino, fh).unwrap();
        assert!(f.store().device().allocated_blocks() >= 16);
        f.unlink(Ino::ROOT, "file").unwrap();
        assert_eq!(f.store().device().allocated_blocks(), 0);
    }

    #[test]
    fn features_are_full_disk() {
        let clock = SimClock::new();
        let f = diskfs_gp2(DevId(3), clock);
        assert!(f.features().block_backed);
        assert!(f.features().direct_io);
        assert_eq!(f.fs_type(), "ext4");
    }
}
