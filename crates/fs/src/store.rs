//! File-content storage backends.
//!
//! [`NodeFs`](crate::nodefs::NodeFs) implements all POSIX *semantics*; a
//! [`FileStore`] provides the *bytes*. [`MemStore`] keeps sparse pages in
//! memory (tmpfs); [`DiskStore`] maps file pages to blocks of a simulated
//! device (ext4-like), so reads and writes consume virtual disk time.

use bytes::Bytes;
use cntr_blockdev::{BlockDevice, BLOCK_SIZE};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Storage for the contents of regular files.
///
/// Files are sparse: unwritten pages read as zeroes. Logical file size is
/// tracked by the inode layer; a store only materializes written pages.
pub trait FileStore: Send + Sync + 'static {
    /// Per-file content state.
    type Content: Send + Sync + Default;

    /// Reads `buf.len()` bytes at `offset` into `buf` (zero-filling holes).
    fn read(&self, content: &Self::Content, offset: u64, buf: &mut [u8]);

    /// Writes `data` at `offset`.
    fn write(&self, content: &mut Self::Content, offset: u64, data: &[u8]);

    /// Releases pages at or beyond `new_len` (truncate down) and zeroes the
    /// tail of the boundary page.
    fn truncate(&self, content: &mut Self::Content, new_len: u64);

    /// Deallocates the whole file (inode dropped).
    fn dealloc(&self, content: &mut Self::Content);

    /// Punches a hole: the byte range reads as zeroes afterwards.
    fn punch_hole(&self, content: &mut Self::Content, offset: u64, len: u64);

    /// Number of bytes physically allocated.
    fn allocated_bytes(&self, content: &Self::Content) -> u64;

    /// Waits for all written data to be durable.
    fn sync(&self);

    /// Zero-copy read hook for the splice path: returns a prefix of the
    /// range `[offset, offset+len)` as a slice of storage the store already
    /// owns, or `None` when the store cannot avoid the copy (the caller
    /// then falls back to [`FileStore::read`]). May return fewer than `len`
    /// bytes (a chunk boundary); must never return an empty buffer.
    fn read_bytes(&self, _content: &Self::Content, _offset: u64, _len: usize) -> Option<Bytes> {
        None
    }

    /// Zero-copy write hook for the splice path: stores `data` at `offset`,
    /// *retaining* (referencing) as much of the buffer as the store's
    /// geometry allows instead of copying it. The default copies via
    /// [`FileStore::write`] — correct for page/block stores, whose
    /// destination is preallocated storage.
    fn write_bytes(&self, content: &mut Self::Content, offset: u64, data: &Bytes) {
        self.write(content, offset, data);
    }
}

/// One 4 KiB page.
type Page = Box<[u8; BLOCK_SIZE]>;

fn zero_page() -> Page {
    Box::new([0u8; BLOCK_SIZE])
}

/// In-memory sparse page store (tmpfs).
#[derive(Default)]
pub struct MemStore;

/// Sparse page map used by [`MemStore`].
#[derive(Default)]
pub struct MemContent {
    pages: BTreeMap<u64, Page>,
}

impl FileStore for MemStore {
    type Content = MemContent;

    fn read(&self, content: &MemContent, offset: u64, buf: &mut [u8]) {
        for_each_page(offset, buf.len(), |page_no, in_page, pos, n| match content
            .pages
            .get(&page_no)
        {
            Some(p) => buf[pos..pos + n].copy_from_slice(&p[in_page..in_page + n]),
            None => buf[pos..pos + n].fill(0),
        });
    }

    fn write(&self, content: &mut MemContent, offset: u64, data: &[u8]) {
        for_each_page(offset, data.len(), |page_no, in_page, pos, n| {
            let page = content.pages.entry(page_no).or_insert_with(zero_page);
            page[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
        });
    }

    fn truncate(&self, content: &mut MemContent, new_len: u64) {
        let boundary_page = new_len / BLOCK_SIZE as u64;
        let in_page = (new_len % BLOCK_SIZE as u64) as usize;
        content
            .pages
            .retain(|&p, _| p < boundary_page || (p == boundary_page && in_page > 0));
        if in_page > 0 {
            if let Some(p) = content.pages.get_mut(&boundary_page) {
                p[in_page..].fill(0);
            }
        }
    }

    fn dealloc(&self, content: &mut MemContent) {
        content.pages.clear();
    }

    fn punch_hole(&self, content: &mut MemContent, offset: u64, len: u64) {
        punch_hole_pages(offset, len, |page_no| {
            content.pages.remove(&page_no);
        });
        // Partial pages at the edges are zeroed.
        zero_partial_edges(offset, len, |page_no, range| {
            if let Some(p) = content.pages.get_mut(&page_no) {
                p[range].fill(0);
            }
        });
    }

    fn allocated_bytes(&self, content: &MemContent) -> u64 {
        content.pages.len() as u64 * BLOCK_SIZE as u64
    }

    fn sync(&self) {}
}

/// Block-device-backed store (ext4-like): file pages map to device blocks.
pub struct DiskStore {
    device: Arc<BlockDevice>,
    alloc: Mutex<BlockAllocator>,
}

/// Simple bump-plus-freelist block allocator.
#[derive(Default)]
struct BlockAllocator {
    next: u64,
    free: Vec<u64>,
}

impl BlockAllocator {
    fn alloc(&mut self) -> u64 {
        self.free.pop().unwrap_or_else(|| {
            let b = self.next;
            self.next += 1;
            b
        })
    }

    fn release(&mut self, block: u64) {
        self.free.push(block);
    }
}

/// Extent map used by [`DiskStore`]: file page number → device block number.
#[derive(Default)]
pub struct DiskContent {
    extents: BTreeMap<u64, u64>,
}

impl DiskStore {
    /// Creates a store allocating from `device`.
    pub fn new(device: Arc<BlockDevice>) -> DiskStore {
        DiskStore {
            device,
            alloc: Mutex::new_class("fs.block_alloc", BlockAllocator::default()),
        }
    }

    /// The underlying device (for stats).
    pub fn device(&self) -> &Arc<BlockDevice> {
        &self.device
    }
}

impl FileStore for DiskStore {
    type Content = DiskContent;

    fn read(&self, content: &DiskContent, offset: u64, buf: &mut [u8]) {
        for_each_page(offset, buf.len(), |page_no, in_page, pos, n| match content
            .extents
            .get(&page_no)
        {
            Some(&block) => {
                let dev_off = block * BLOCK_SIZE as u64 + in_page as u64;
                self.device.read(dev_off, &mut buf[pos..pos + n]);
            }
            None => buf[pos..pos + n].fill(0),
        });
    }

    fn write(&self, content: &mut DiskContent, offset: u64, data: &[u8]) {
        for_each_page(offset, data.len(), |page_no, in_page, pos, n| {
            let block = *content
                .extents
                .entry(page_no)
                .or_insert_with(|| self.alloc.lock().alloc());
            let dev_off = block * BLOCK_SIZE as u64 + in_page as u64;
            self.device.write(dev_off, &data[pos..pos + n]);
        });
    }

    fn truncate(&self, content: &mut DiskContent, new_len: u64) {
        let boundary_page = new_len / BLOCK_SIZE as u64;
        let in_page = (new_len % BLOCK_SIZE as u64) as usize;
        let mut alloc = self.alloc.lock();
        let doomed: Vec<u64> = content
            .extents
            .range((boundary_page + u64::from(in_page > 0))..)
            .map(|(&p, _)| p)
            .collect();
        for p in doomed {
            if let Some(block) = content.extents.remove(&p) {
                self.device
                    .discard(block * BLOCK_SIZE as u64, BLOCK_SIZE as u64);
                alloc.release(block);
            }
        }
        drop(alloc);
        if in_page > 0 {
            if let Some(&block) = content.extents.get(&boundary_page) {
                let zeros = vec![0u8; BLOCK_SIZE - in_page];
                self.device
                    .write(block * BLOCK_SIZE as u64 + in_page as u64, &zeros);
            }
        }
    }

    fn dealloc(&self, content: &mut DiskContent) {
        let mut alloc = self.alloc.lock();
        for (_, block) in std::mem::take(&mut content.extents) {
            self.device
                .discard(block * BLOCK_SIZE as u64, BLOCK_SIZE as u64);
            alloc.release(block);
        }
    }

    fn punch_hole(&self, content: &mut DiskContent, offset: u64, len: u64) {
        let mut alloc = self.alloc.lock();
        punch_hole_pages(offset, len, |page_no| {
            if let Some(block) = content.extents.remove(&page_no) {
                self.device
                    .discard(block * BLOCK_SIZE as u64, BLOCK_SIZE as u64);
                alloc.release(block);
            }
        });
        drop(alloc);
        zero_partial_edges(offset, len, |page_no, range| {
            if let Some(&block) = content.extents.get(&page_no) {
                let zeros = vec![0u8; range.len()];
                self.device
                    .write(block * BLOCK_SIZE as u64 + range.start as u64, &zeros);
            }
        });
    }

    fn allocated_bytes(&self, content: &DiskContent) -> u64 {
        content.extents.len() as u64 * BLOCK_SIZE as u64
    }

    fn sync(&self) {
        // An ext4-style fsync commits the journal: one extra (random)
        // device write before the barrier. This is why even tiny fsyncs on
        // the native filesystem cost a disk round trip (SQLite, §5.2.2).
        let journal_block = [0u8; 512];
        self.device.write(u64::MAX / 2, &journal_block);
        self.device.flush();
    }
}

/// Iterates page-aligned chunks of a byte range: calls
/// `f(page_no, offset_in_page, position_in_buffer, chunk_len)`.
///
/// Public so other content backends (the blob store in `cntr-overlay`) can
/// reuse the exact chunking geometry of the in-tree stores.
pub fn for_each_page(offset: u64, len: usize, mut f: impl FnMut(u64, usize, usize, usize)) {
    let mut pos = 0usize;
    let mut off = offset;
    while pos < len {
        let page_no = off / BLOCK_SIZE as u64;
        let in_page = (off % BLOCK_SIZE as u64) as usize;
        let n = (BLOCK_SIZE - in_page).min(len - pos);
        f(page_no, in_page, pos, n);
        pos += n;
        off += n as u64;
    }
}

/// Calls `f` for every page fully covered by the hole.
pub fn punch_hole_pages(offset: u64, len: u64, mut f: impl FnMut(u64)) {
    let first = offset.div_ceil(BLOCK_SIZE as u64);
    let last = (offset + len) / BLOCK_SIZE as u64;
    for p in first..last {
        f(p);
    }
}

/// Calls `f(page_no, in-page range)` for the partial pages at the edges of a
/// hole.
pub fn zero_partial_edges(offset: u64, len: u64, mut f: impl FnMut(u64, std::ops::Range<usize>)) {
    let end = offset + len;
    let first_page = offset / BLOCK_SIZE as u64;
    let last_page = end / BLOCK_SIZE as u64;
    let first_in = (offset % BLOCK_SIZE as u64) as usize;
    let last_in = (end % BLOCK_SIZE as u64) as usize;
    if first_page == last_page {
        if first_in != last_in {
            f(first_page, first_in..last_in);
        }
        return;
    }
    if first_in != 0 {
        f(first_page, first_in..BLOCK_SIZE);
    }
    if last_in != 0 {
        f(last_page, 0..last_in);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_blockdev::DiskModel;
    use cntr_types::SimClock;

    fn mem_rw(offset: u64, data: &[u8]) -> Vec<u8> {
        let store = MemStore;
        let mut c = MemContent::default();
        store.write(&mut c, offset, data);
        let mut out = vec![0u8; data.len()];
        store.read(&c, offset, &mut out);
        out
    }

    #[test]
    fn mem_roundtrip_unaligned() {
        let data: Vec<u8> = (0..9000).map(|i| (i * 7 % 256) as u8).collect();
        assert_eq!(mem_rw(4093, &data), data);
    }

    #[test]
    fn mem_holes_read_zero() {
        let store = MemStore;
        let mut c = MemContent::default();
        store.write(&mut c, 3 * BLOCK_SIZE as u64, b"xyz");
        let mut buf = [1u8; 16];
        store.read(&c, 0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_truncate_zeroes_tail() {
        let store = MemStore;
        let mut c = MemContent::default();
        store.write(&mut c, 0, &[0xAA; 2 * BLOCK_SIZE]);
        store.truncate(&mut c, 100);
        // Reading past the truncation point (within the kept page) is zero.
        let mut buf = [1u8; 50];
        store.read(&c, 100, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        // The head survives.
        let mut head = [0u8; 100];
        store.read(&c, 0, &mut head);
        assert!(head.iter().all(|&b| b == 0xAA));
        assert_eq!(store.allocated_bytes(&c), BLOCK_SIZE as u64);
    }

    #[test]
    fn mem_punch_hole() {
        let store = MemStore;
        let mut c = MemContent::default();
        store.write(&mut c, 0, &[0xBB; 4 * BLOCK_SIZE]);
        store.punch_hole(&mut c, 100, 2 * BLOCK_SIZE as u64);
        let mut buf = [1u8; 2 * BLOCK_SIZE];
        store.read(&c, 100, &mut buf);
        assert!(buf.iter().all(|&b| b == 0), "hole must read zero");
        let mut pre = [0u8; 100];
        store.read(&c, 0, &mut pre);
        assert!(pre.iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn disk_roundtrip_and_reclaim() {
        let clock = SimClock::new();
        let dev = BlockDevice::new(DiskModel::free(), clock);
        let store = DiskStore::new(dev.clone());
        let mut c = DiskContent::default();
        let data: Vec<u8> = (0..20_000).map(|i| (i % 253) as u8).collect();
        store.write(&mut c, 1234, &data);
        let mut out = vec![0u8; data.len()];
        store.read(&c, 1234, &mut out);
        assert_eq!(out, data);
        assert!(dev.allocated_blocks() > 0);
        store.dealloc(&mut c);
        assert_eq!(dev.allocated_blocks(), 0);
        assert_eq!(store.allocated_bytes(&c), 0);
    }

    #[test]
    fn disk_blocks_are_reused_after_free() {
        let clock = SimClock::new();
        let dev = BlockDevice::new(DiskModel::free(), clock);
        let store = DiskStore::new(dev);
        let mut a = DiskContent::default();
        store.write(&mut a, 0, &[1u8; 4 * BLOCK_SIZE]);
        store.dealloc(&mut a);
        let mut b = DiskContent::default();
        store.write(&mut b, 0, &[2u8; 4 * BLOCK_SIZE]);
        // The allocator reused the freed blocks instead of growing.
        assert_eq!(store.alloc.lock().next, 4);
    }

    #[test]
    fn disk_writes_consume_virtual_time() {
        let clock = SimClock::new();
        let dev = BlockDevice::new(DiskModel::gp2(), clock.clone());
        let store = DiskStore::new(dev);
        let mut c = DiskContent::default();
        store.write(&mut c, 0, &[0u8; BLOCK_SIZE]);
        assert!(clock.now().as_nanos() > 0);
    }
}
