//! The zero-copy proof: pointer-identity assertions along the splice path.
//!
//! Virtual-time accounting says splice is cheaper; these tests prove the
//! implementation actually moves payloads **by reference**. Every hop a
//! payload crosses is recorded by [`cntr_fuse::testing`] instrumentation —
//! server storage, the `/dev/fuse` boundary, the client — and the copy
//! count is the number of pointer changes between adjacent hops:
//!
//! * a 1 MiB read with `splice_read` negotiated crosses the FUSE boundary
//!   with **0** payload copies (storage → wire → caller is one allocation);
//! * without `splice_read`, the same read pays ≥ 1 memcpy;
//! * a 1 MiB `splice_write` lands in blob chunk storage as *slices of the
//!   caller's buffer* — storage retains the wire allocation itself;
//! * without `splice_write`, the payload is copied at the boundary.

use bytes::Bytes;
use cntr_fs::memfs::memfs;
use cntr_fs::{Filesystem, FsContext};
use cntr_fuse::testing::{copies_along, CountingTransport, InstrumentedFs, PayloadLog};
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, InitFlags, InlineTransport};
use cntr_overlay::{blobfs, BlobStore, CHUNK_SIZE};
use cntr_types::{CostModel, DevId, FileType, Ino, Mode, OpenFlags, SimClock};
use std::sync::Arc;

const MIB: usize = 1 << 20;

/// Mounts a FUSE client over `backing` with full instrumentation.
fn instrumented_mount(
    flags: InitFlags,
    backing: Arc<dyn Filesystem>,
) -> (Arc<FuseClientFs>, Arc<PayloadLog>) {
    let log = PayloadLog::new();
    let inst = InstrumentedFs::new(backing, Arc::clone(&log));
    let inline = InlineTransport::new(FsHandler::new(inst));
    let transport = CountingTransport::new(inline, Arc::clone(&log));
    let client = FuseClientFs::mount(
        DevId(0xC0),
        SimClock::new(),
        CostModel::calibrated(),
        FuseConfig::optimized().with_flags(flags),
        transport,
    )
    .expect("mount");
    (client, log)
}

/// A 1 MiB payload whose 4 KiB chunks are pairwise distinct and non-zero,
/// so blob dedup cannot alias them to pre-existing storage.
fn unique_payload() -> Vec<u8> {
    (0..MIB)
        .map(|i| ((i / CHUNK_SIZE) as u8) ^ ((i % 251) as u8 + 1))
        .collect()
}

fn create_and_fill(fs: &Arc<FuseClientFs>, payload: &[u8]) -> (Ino, cntr_fs::Fh) {
    let st = fs
        .mknod(
            Ino::ROOT,
            "f",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &FsContext::root(),
        )
        .unwrap();
    let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
    fs.write(st.ino, fh, 0, payload).unwrap();
    (st.ino, fh)
}

/// Performs a cold 1 MiB read and returns the pointer chain
/// `[storage, wire, caller]` plus the data itself.
fn read_chain(flags: InitFlags) -> (Vec<usize>, Bytes, Vec<u8>) {
    let backing = memfs(DevId(1), SimClock::new());
    let (fs, log) = instrumented_mount(flags, backing);
    let payload = unique_payload();
    let (ino, fh) = create_and_fill(&fs, &payload);
    fs.drop_caches();
    log.clear();

    let got = fs.read_bytes(ino, fh, 0, MIB).unwrap();
    assert_eq!(got.len(), MIB);

    let storage = log.last("fs-read").expect("storage hop recorded");
    let wire = log.last("wire-reply").expect("wire hop recorded");
    assert_eq!(storage.len, MIB, "storage answered the full request");
    (
        vec![storage.ptr, wire.ptr, got.as_ptr() as usize],
        got,
        payload,
    )
}

#[test]
fn spliced_1mib_read_crosses_the_boundary_with_zero_copies() {
    let mut flags = InitFlags::cntr_default();
    flags.splice_read = true;
    let (chain, got, payload) = read_chain(flags);
    assert_eq!(
        copies_along(&chain),
        0,
        "splice_read must hand one allocation end to end: {chain:x?}"
    );
    assert_eq!(&got[..], &payload[..], "zero-copy must not corrupt data");
}

#[test]
fn unspliced_1mib_read_pays_at_least_one_copy() {
    let mut flags = InitFlags::cntr_default();
    flags.splice_read = false;
    let (chain, got, payload) = read_chain(flags);
    assert!(
        copies_along(&chain) > 0,
        "without splice_read the boundary must memcpy: {chain:x?}"
    );
    assert_eq!(&got[..], &payload[..]);
}

/// Performs a 1 MiB `write_bytes` over a blob-backed server and returns
/// `(payload, chain [caller, wire, server], store, mount)`. The mount is
/// returned so the backing filesystem (which holds the chunk references)
/// outlives the assertions.
fn write_chain(flags: InitFlags) -> (Bytes, Vec<usize>, Arc<BlobStore>, Arc<FuseClientFs>) {
    let store = BlobStore::new();
    let backing = blobfs(DevId(2), SimClock::new(), Arc::clone(&store));
    let (fs, log) = instrumented_mount(flags, backing);
    let st = fs
        .mknod(
            Ino::ROOT,
            "w",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &FsContext::root(),
        )
        .unwrap();
    let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
    log.clear();

    let payload = Bytes::from(unique_payload());
    let n = fs.write_bytes(st.ino, fh, 0, payload.clone()).unwrap();
    assert_eq!(n, MIB);

    let wire = log.last("wire-request").expect("wire hop recorded");
    let server = log.last("fs-write").expect("server hop recorded");
    let chain = vec![payload.as_ptr() as usize, wire.ptr, server.ptr];
    (payload, chain, store, fs)
}

#[test]
fn spliced_1mib_write_is_retained_by_chunk_storage() {
    let (payload, chain, store, _mount) = write_chain(InitFlags::cntr_default());
    assert_eq!(
        copies_along(&chain),
        0,
        "splice_write must pass the caller's buffer through: {chain:x?}"
    );
    // The deepest hop: blob chunk storage holds *slices of the caller's
    // allocation* — the write landed without a single payload copy.
    for k in [0usize, 1, 127, 255] {
        let chunk = &payload[k * CHUNK_SIZE..(k + 1) * CHUNK_SIZE];
        let id = store.lookup_chunk(chunk).expect("chunk stored");
        let stored = store.chunk_bytes(id);
        assert_eq!(
            stored.as_ptr() as usize,
            payload.as_ptr() as usize + k * CHUNK_SIZE,
            "chunk {k} must be a slice of the original payload"
        );
    }
}

#[test]
fn unspliced_1mib_write_copies_at_the_boundary() {
    let mut flags = InitFlags::cntr_default();
    flags.splice_write = false;
    let (payload, chain, store, _mount) = write_chain(flags);
    assert!(
        copies_along(&chain) > 0,
        "without splice_write the boundary must memcpy: {chain:x?}"
    );
    // Storage still retains *some* allocation zero-copy — just not the
    // caller's (the copy happened at the /dev/fuse boundary).
    let chunk = &payload[0..CHUNK_SIZE];
    let id = store.lookup_chunk(chunk).expect("chunk stored");
    assert_ne!(
        store.chunk_bytes(id).as_ptr() as usize,
        payload.as_ptr() as usize,
        "the stored chunk must not alias the caller's buffer"
    );
}

/// The readahead window is retained by reference too: sequential 4 KiB
/// reads after a spliced 128 KiB fill are served as slices of the same
/// reply allocation.
#[test]
fn readahead_hits_are_slices_of_the_spliced_reply() {
    let backing = memfs(DevId(3), SimClock::new());
    let (fs, log) = instrumented_mount(InitFlags::cntr_default(), backing);
    let payload = unique_payload();
    let (ino, fh) = create_and_fill(&fs, &payload);
    fs.drop_caches();
    log.clear();

    let first = fs.read_bytes(ino, fh, 0, 4096).unwrap();
    let wire = log.last("wire-reply").expect("one READ issued");
    assert_eq!(first.as_ptr() as usize, wire.ptr);
    // The following window hits come from the same allocation, offset by
    // their position in the window — no further requests, no copies.
    for page in 1..4u64 {
        let next = fs.read_bytes(ino, fh, page * 4096, 4096).unwrap();
        assert_eq!(
            next.as_ptr() as usize,
            wire.ptr + (page * 4096) as usize,
            "readahead hit must slice the retained reply"
        );
        assert_eq!(&next[..], &payload[page as usize * 4096..][..4096]);
    }
    assert_eq!(
        log.all().iter().filter(|h| h.hop == "wire-reply").count(),
        1,
        "only the initial fill crossed the wire"
    );
}
