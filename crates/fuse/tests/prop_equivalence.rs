//! Property test: a filesystem served over FUSE is indistinguishable from
//! the same filesystem accessed directly.
//!
//! Random operation sequences run twice — once against a bare `MemFs`, once
//! against the same operations through `FuseClientFs` → `FsHandler` →
//! `MemFs` — and every observable result (content, sizes, errors) must
//! match. This pins the whole protocol layer (caches, readahead, forget
//! bookkeeping) to POSIX behaviour.

use cntr_fs::memfs::memfs;
use cntr_fs::{Filesystem, FsContext};
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, InlineTransport};
use cntr_types::{CostModel, DevId, Errno, FileType, Ino, Mode, OpenFlags, SimClock};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write(u8, u16, Vec<u8>),
    ReadAll(u8),
    Unlink(u8),
    Mkdir(u8),
    Stat(u8),
}

fn name(slot: u8) -> String {
    format!("n{slot}")
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6).prop_map(Op::Create),
        (
            0u8..6,
            0u16..8192,
            proptest::collection::vec(any::<u8>(), 1..256)
        )
            .prop_map(|(s, o, d)| Op::Write(s, o, d)),
        (0u8..6).prop_map(Op::ReadAll),
        (0u8..6).prop_map(Op::Unlink),
        (0u8..6).prop_map(Op::Mkdir),
        (0u8..6).prop_map(Op::Stat),
    ]
}

/// Applies one op, returning an observation string for comparison.
fn apply(fs: &dyn Filesystem, op: &Op) -> String {
    let ctx = FsContext::root();
    match op {
        Op::Create(s) => match fs.mknod(
            Ino::ROOT,
            &name(*s),
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &ctx,
        ) {
            Ok(st) => format!("create ok size={}", st.size),
            Err(e) => format!("create {e}"),
        },
        Op::Write(s, off, data) => {
            let ino = match fs.lookup(Ino::ROOT, &name(*s)) {
                Ok(st) if st.ftype == FileType::Regular => st.ino,
                Ok(_) => return "write isdir".into(),
                Err(e) => return format!("write lookup {e}"),
            };
            match fs.open(ino, OpenFlags::RDWR) {
                Ok(fh) => {
                    let r = fs.write(ino, fh, u64::from(*off), data);
                    let _ = fs.release(ino, fh);
                    format!("write {r:?}")
                }
                Err(e) => format!("write open {e}"),
            }
        }
        Op::ReadAll(s) => {
            let ino = match fs.lookup(Ino::ROOT, &name(*s)) {
                Ok(st) if st.ftype == FileType::Regular => st.ino,
                Ok(_) => return "read isdir".into(),
                Err(e) => return format!("read lookup {e}"),
            };
            let size = fs.getattr(ino).map(|s| s.size).unwrap_or(0);
            match fs.open(ino, OpenFlags::RDONLY) {
                Ok(fh) => {
                    let mut buf = vec![0u8; size as usize];
                    let got = fs.read(ino, fh, 0, &mut buf);
                    let _ = fs.release(ino, fh);
                    match got {
                        Ok(n) => {
                            buf.truncate(n);
                            format!("read {n} {:08x}", fletcher(&buf))
                        }
                        Err(e) => format!("read {e}"),
                    }
                }
                Err(e) => format!("read open {e}"),
            }
        }
        Op::Unlink(s) => match fs.unlink(Ino::ROOT, &name(*s)) {
            Ok(()) => "unlink ok".into(),
            Err(e) => format!("unlink {e}"),
        },
        Op::Mkdir(s) => match fs.mkdir(Ino::ROOT, &name(*s), Mode::RWXR_XR_X, &ctx) {
            Ok(_) => "mkdir ok".into(),
            Err(e) => format!("mkdir {e}"),
        },
        Op::Stat(s) => match fs.lookup(Ino::ROOT, &name(*s)) {
            Ok(st) => format!("stat {:?} size={} nlink={}", st.ftype, st.size, st.nlink),
            Err(e) => format!("stat {e}"),
        },
    }
}

fn fletcher(data: &[u8]) -> u32 {
    let (mut a, mut b) = (0u32, 0u32);
    for &byte in data {
        a = (a + u32::from(byte)) % 65521;
        b = (b + a) % 65521;
    }
    (b << 16) | a
}

fn fuse_mounted() -> Arc<FuseClientFs> {
    let clock = SimClock::new();
    let backing = memfs(DevId(1), clock.clone());
    let transport = InlineTransport::new(FsHandler::new(backing));
    FuseClientFs::mount(
        DevId(100),
        clock,
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .expect("mount")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fuse_mounted_fs_matches_direct_fs(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let direct = memfs(DevId(1), SimClock::new());
        let fused = fuse_mounted();
        for (i, op) in ops.iter().enumerate() {
            let a = apply(direct.as_ref(), op);
            let b = apply(fused.as_ref(), op);
            prop_assert_eq!(a, b, "divergence at op {} ({:?})", i, op);
        }
    }

    #[test]
    fn unoptimized_fuse_is_equally_correct(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        // Correctness must not depend on any §3.3 optimization.
        let clock = SimClock::new();
        let backing = memfs(DevId(1), clock.clone());
        let transport = InlineTransport::new(FsHandler::new(backing));
        let fused = FuseClientFs::mount(
            DevId(100),
            clock,
            CostModel::calibrated(),
            FuseConfig::unoptimized(),
            transport,
        )
        .expect("mount");
        let direct = memfs(DevId(1), SimClock::new());
        for op in &ops {
            let a = apply(direct.as_ref(), op);
            let b = apply(fused.as_ref(), op);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn dead_connection_fails_everything_consistently(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        let fused = fuse_mounted();
        fused.kill_connection();
        for op in &ops {
            let out = apply(fused.as_ref(), op);
            prop_assert!(
                out.contains(&format!("{}", Errno::ENOTCONN)) || out.contains("lookup"),
                "op {:?} gave {}",
                op,
                out
            );
        }
    }
}
