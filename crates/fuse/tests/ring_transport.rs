//! End-to-end checks of the io_uring-style ring transport.
//!
//! Everything lives in one `#[test]` on purpose (the observability.rs
//! pattern): the `fuse.req.*` counters and the `fuse.ring.*` metrics are
//! process-global, so a single sequential test per binary is the only way
//! the started==completed / in-flight==0 assertions can be exact.
//!
//! Covered here:
//! * INIT negotiation grants the ring bit to `cntr_default` and withholds
//!   it from `paper_legacy` (the splice-write pattern);
//! * batched 1 MiB spliced reads over the ring stay zero-copy
//!   (`testing::copies_along == 0` along storage → wire → caller);
//! * an 8-thread bout leaves `fuse.req.started == fuse.req.completed`
//!   and `fuse.req.in-flight == 0`, with the ring batching metrics live;
//! * shutdown mid-batch fails the queued submissions with `ENOTCONN`
//!   while the request already in the handler completes normally;
//! * the FUSE-writeback re-entrancy regression (PR-3 deadlock class)
//!   runs over a single-reaper ring under a watchdog;
//! * a traced read over the ring still crosses all four pipeline stages.

use bytes::Bytes;
use cntr_fs::memfs::memfs;
use cntr_fs::{Filesystem, FsContext};
use cntr_fuse::proto::{Reply, Request, RequestCtx};
use cntr_fuse::testing::{copies_along, CountingTransport, InstrumentedFs, PayloadLog};
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig, FuseHandler, RingTransport, Transport};
use cntr_types::{CostModel, DevId, Errno, FileType, Ino, Mode, OpenFlags, SimClock};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MIB: usize = 1 << 20;

fn lookup() -> Request {
    Request::Lookup {
        parent: Ino::ROOT,
        name: "x".into(),
        ctx: RequestCtx::default(),
    }
}

fn mknod_open(fs: &Arc<FuseClientFs>, name: &str) -> (Ino, cntr_fs::Fh) {
    let st = fs
        .mknod(
            Ino::ROOT,
            name,
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &FsContext::root(),
        )
        .unwrap();
    let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
    (st.ino, fh)
}

/// The ring-bit negotiation: granted to the shipping profile, withheld
/// from the paper profile — exactly the splice-write pattern.
fn check_negotiation() {
    let backing = memfs(DevId(10), SimClock::new());
    let ring = Arc::new(RingTransport::new(FsHandler::new(backing), 2, 16, 4));
    let client = FuseClientFs::mount(
        DevId(0xA0),
        SimClock::new(),
        CostModel::calibrated(),
        FuseConfig::optimized(),
        Arc::clone(&ring) as Arc<dyn Transport>,
    )
    .unwrap();
    assert!(
        client.effective_flags().ring,
        "cntr_default negotiates ring"
    );

    let backing = memfs(DevId(11), SimClock::new());
    let legacy = FuseClientFs::mount(
        DevId(0xA1),
        SimClock::new(),
        CostModel::calibrated(),
        FuseConfig::paper(),
        Arc::new(RingTransport::new(FsHandler::new(backing), 2, 16, 4)),
    )
    .unwrap();
    assert!(
        !legacy.effective_flags().ring,
        "paper_legacy keeps the ring bit off"
    );
    ring.shutdown();
}

/// Batched 1 MiB spliced reads over the ring stay zero-copy: the pointer
/// chain storage → wire → caller shows zero payload copies, for several
/// consecutive reads riding the same ring.
fn check_spliced_reads_zero_copy() {
    let log = PayloadLog::new();
    let backing = memfs(DevId(12), SimClock::new());
    let inst = InstrumentedFs::new(backing, Arc::clone(&log));
    let ring: Arc<dyn Transport> = Arc::new(RingTransport::new(FsHandler::new(inst), 2, 16, 4));
    let transport = CountingTransport::new(ring, Arc::clone(&log));
    let client = FuseClientFs::mount(
        DevId(0xA2),
        SimClock::new(),
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .unwrap();
    let payload: Vec<u8> = (0..MIB).map(|i| (i % 251) as u8 ^ 0x5A).collect();
    let (ino, fh) = mknod_open(&client, "big");
    client.write(ino, fh, 0, &payload).unwrap();

    for round in 0..3 {
        client.drop_caches();
        log.clear();
        let got = client.read_bytes(ino, fh, 0, MIB).unwrap();
        assert_eq!(got.len(), MIB);
        assert_eq!(&got[..], &payload[..], "round {round}: data intact");
        let storage = log.last("fs-read").expect("storage hop recorded");
        let wire = log.last("wire-reply").expect("wire hop recorded");
        let chain = [storage.ptr, wire.ptr, got.as_ptr() as usize];
        assert_eq!(
            copies_along(&chain),
            0,
            "round {round}: a spliced read over the ring must cross \
             storage → wire → caller in one allocation: {chain:x?}"
        );
    }
    client.kill_connection();
}

/// 8 submitter threads hammer one 4-reaper ring; afterwards the global
/// request accounting is symmetric and the ring metrics recorded real
/// batching.
fn check_eight_thread_bout() {
    let backing = memfs(DevId(13), SimClock::new());
    let t = Arc::new(RingTransport::new(FsHandler::new(backing), 4, 64, 8));
    let mut joins = Vec::new();
    for i in 0..8 {
        let t = Arc::clone(&t);
        joins.push(std::thread::spawn(move || {
            for k in 0..32 {
                let reply = t.call(Request::Lookup {
                    parent: Ino::ROOT,
                    name: format!("m{i}-{k}"),
                    ctx: RequestCtx::default(),
                });
                assert!(
                    matches!(reply, Reply::Err(Errno::ENOENT)),
                    "lookup of a missing name over the ring"
                );
                let reply = t.call(Request::Getattr { ino: Ino::ROOT });
                assert!(matches!(reply, Reply::Attr(_)));
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let s = t.stats();
    assert_eq!(s.lookups, 8 * 32);
    assert_eq!(s.getattrs, 8 * 32);
    t.shutdown();
    if let Ok(t) = Arc::try_unwrap(t) {
        t.join();
    }

    // The batching metrics are live and rendered with the rest of
    // /proc/cntrstats' source registry.
    let submits = obs::histogram("fuse.ring.submit-batch-size").expect("registered");
    assert!(submits.count() > 0, "doorbells recorded batch sizes");
    let reaped = obs::histogram("fuse.ring.reaped-per-wakeup").expect("registered");
    assert!(reaped.count() > 0, "reapers recorded wakeup batches");
    assert_eq!(
        obs::gauge_value("fuse.ring.queue-depth").unwrap(),
        0,
        "no submissions left in any ring"
    );
    let text = obs::render();
    for metric in [
        "fuse.ring.submit-batch-size.count",
        "fuse.ring.reaped-per-wakeup.count",
        "fuse.ring.queue-depth",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(metric)),
            "missing {metric} in rendered stats"
        );
    }
}

/// A handler whose first GETATTR spins until the test opens the gate —
/// pinning the single reaper inside the handler so submissions pile up
/// behind it deterministically.
#[derive(Clone)]
struct GatedHandler {
    entered: Arc<AtomicBool>,
    gate: Arc<AtomicBool>,
}

impl FuseHandler for GatedHandler {
    fn handle(&self, req: Request) -> Reply {
        if matches!(req, Request::Getattr { .. }) {
            self.entered.store(true, Ordering::Release);
            while !self.gate.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
        Reply::Ok
    }
}

/// Shutdown mid-batch: the request already in the handler completes
/// normally; everything still queued in the SQ fails with `ENOTCONN`.
fn check_shutdown_mid_batch() {
    let entered = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(AtomicBool::new(false));
    let handler = GatedHandler {
        entered: Arc::clone(&entered),
        gate: Arc::clone(&gate),
    };
    // One reaper; batch == depth so queued lookups never ring the
    // doorbell on their own while the reaper is pinned.
    let t = Arc::new(RingTransport::new(handler, 1, 8, 8));

    let pinned = {
        let t = Arc::clone(&t);
        std::thread::spawn(move || t.call(Request::Getattr { ino: Ino::ROOT }))
    };
    while !entered.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    // The reaper is inside the handler. Queue three more submissions.
    let queued: Vec<_> = (0..3)
        .map(|_| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || t.call(lookup()))
        })
        .collect();
    while obs::gauge_value("fuse.ring.queue-depth").unwrap() < 3 {
        std::thread::yield_now();
    }
    // Kill the connection mid-batch, then release the pinned handler.
    t.shutdown();
    gate.store(true, Ordering::Release);

    let first = pinned.join().unwrap();
    assert!(
        matches!(first, Reply::Ok),
        "the in-flight request was already accepted: {first:?}"
    );
    for q in queued {
        let reply = q.join().unwrap();
        assert!(
            matches!(reply, Reply::Err(Errno::ENOTCONN)),
            "queued submissions must fail with ENOTCONN: {reply:?}"
        );
    }
    assert!(matches!(t.call(lookup()), Reply::Err(Errno::ENOTCONN)));
}

/// A server handler that re-enters the transport it is served by — the
/// FUSE writeback shape. With one reaper, queueing the re-entrant request
/// would deadlock; the ring must execute it inline (PR-3 fix).
#[derive(Clone)]
struct ReentrantHandler {
    inner: FsHandler,
    transport: Arc<Mutex<Option<Arc<dyn Transport>>>>,
}

impl FuseHandler for ReentrantHandler {
    fn handle(&self, req: Request) -> Reply {
        if matches!(req, Request::Write { .. }) {
            let t = self.transport.lock().clone();
            if let Some(t) = t {
                let reply = t.call(Request::Getattr { ino: Ino::ROOT });
                assert!(
                    !matches!(reply, Reply::Err(_)),
                    "re-entrant request must be served"
                );
            }
        }
        self.inner.handle(req)
    }
}

fn check_writeback_reentrancy() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let clock = SimClock::new();
        let backing = memfs(DevId(14), clock.clone());
        let transport_slot = Arc::new(Mutex::new(None));
        let handler = ReentrantHandler {
            inner: FsHandler::new(backing),
            transport: Arc::clone(&transport_slot),
        };
        // One reaper: a queued re-entrant request can never be served.
        let transport = Arc::new(RingTransport::new(handler, 1, 8, 4));
        *transport_slot.lock() = Some(Arc::clone(&transport) as Arc<dyn Transport>);
        let client = FuseClientFs::mount(
            DevId(0xA3),
            clock,
            CostModel::calibrated(),
            FuseConfig::optimized(),
            transport,
        )
        .unwrap();
        let (ino, fh) = mknod_open(&client, "wb");
        // Every WRITE's handler re-enters with a GETATTR before landing.
        let payload = Bytes::from(vec![0xEEu8; 64 * 1024]);
        for round in 0..8u64 {
            let n = client
                .write_bytes(ino, fh, round * payload.len() as u64, payload.clone())
                .unwrap();
            assert_eq!(n, payload.len());
        }
        assert_eq!(
            client.getattr(ino).unwrap().size,
            8 * payload.len() as u64,
            "every re-entrant write landed"
        );
        tx.send(()).unwrap();
    });
    rx.recv_timeout(Duration::from_secs(60)).expect(
        "deadlock: a reaper-originated (re-entrant) request was queued \
         behind itself instead of executing inline on the ring",
    );
}

/// A traced read over the ring still attributes spans across all four
/// pipeline stages — the trace id rides the SQE across the ring.
fn check_trace_spans_cross_the_ring() {
    let clock = SimClock::new();
    let backing = memfs(DevId(15), clock.clone());
    let transport = Arc::new(RingTransport::new(FsHandler::new(backing), 2, 16, 4));
    let client = FuseClientFs::mount(
        DevId(0xA4),
        clock,
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .unwrap();
    let (ino, fh) = mknod_open(&client, "traced");
    let payload = vec![0x11u8; MIB];
    client.write(ino, fh, 0, &payload).unwrap();
    client.drop_caches();
    let data = client.read_bytes(ino, fh, 0, MIB).unwrap();
    assert_eq!(data.len(), MIB);

    let bound = obs::trace::next_trace_id();
    let full = (1..bound)
        .filter(|&trace| {
            let stages: Vec<&str> = obs::trace::spans_for(trace)
                .iter()
                .map(|r| r.stage)
                .collect();
            ["client", "transport", "handler", "storage"]
                .iter()
                .all(|s| stages.contains(s))
        })
        .count();
    assert!(
        full > 0,
        "no ring-transported trace crossed client/transport/handler/storage"
    );
    client.kill_connection();
}

#[test]
fn ring_transport_end_to_end() {
    check_negotiation();
    check_spliced_reads_zero_copy();
    check_eight_thread_bout();
    check_shutdown_mid_batch();
    check_writeback_reentrancy();
    check_trace_spans_cross_the_ring();

    // After every section above — including the mid-batch shutdown, whose
    // failed submissions still pass through their ReqGuards — the global
    // request accounting is symmetric.
    let started = obs::counter_value("fuse.req.started").unwrap();
    let completed = obs::counter_value("fuse.req.completed").unwrap();
    assert!(started > 0);
    assert_eq!(started, completed, "every started request completed");
    assert_eq!(
        obs::gauge_value("fuse.req.in-flight").unwrap(),
        0,
        "nothing left in flight"
    );
}
