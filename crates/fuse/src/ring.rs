//! FUSE-over-io_uring style ring transport.
//!
//! [`ThreadedTransport`](crate::conn::ThreadedTransport) pays one worker
//! wakeup per request: every `call` is a channel send (mutex + condvar),
//! a park on the reply channel, and a wakeup on the worker — the exact
//! per-request synchronization tax the paper's Figure 4 curve measures.
//! Linux has since amortized this with FUSE-over-io_uring: userspace and
//! the kernel share fixed-capacity submission/completion rings, the
//! client batches submissions behind a doorbell, and the server reaps
//! many completions per wakeup.
//!
//! [`RingTransport`] reproduces that shape:
//!
//! * **Per-worker SQ/CQ pairs** — each worker owns one
//!   [`crossbeam::queue::ArrayQueue`] pair (lock-free bounded MPMC);
//!   submitters round-robin across rings, so there is no shared queue
//!   lock on the hot path at all.
//! * **Batched submission with adaptive flush** — a submission bumps a
//!   lock-free batch counter and only rings the doorbell (worker unpark)
//!   when the batch fills (`FuseConfig::ring_batch`), the worker
//!   advertises queue-idle (waiting costs more than a wakeup saves), or
//!   the op is a sync boundary (FSYNC/FLUSH/INIT/DESTROY must not sit in
//!   a queue). The submit fast path takes no lock at all.
//! * **Multi-reap completions** — the worker drains its SQ fully per
//!   wakeup, handles the whole batch, and delivers the completions in one
//!   CQ sweep; `fuse.ring.reaped-per-wakeup` records how many requests
//!   each wakeup amortized.
//!
//! The transport carries trace ids across the ring (client → transport →
//! handler → storage spans keep attributing), executes worker-re-entrant
//! writeback requests inline (the PR-3 deadlock class), and negotiates
//! via [`InitFlags::ring`](crate::proto::InitFlags::ring) —
//! `cntr_default` on, `paper_legacy` off, same pattern as splice-write.
//!
//! Lock discipline: the ring's three lock classes rank *above* the
//! kernel's groups 0–5 (see [`lock_class`]), so teardown paths that reach
//! the transport while a ranked kernel lock is held stay
//! ascending-legal, and the park/reap points carry the same
//! `lockdep::assert_no_locks_held_except` checkpoints as the other
//! transports.

use crate::config::FuseConfig;
use crate::conn::{next_conn_id, ConnSnapshot, ConnStats, ReqGuard, Transport, WORKER_OF};
use crate::proto::{Opcode, Reply, Request};
use crate::server::FuseHandler;
use cntr_types::Errno;
use crossbeam::queue::ArrayQueue;
use obs::trace::{Span, TraceScope};
use obs::{LazyGauge, LazyHistogram, Subsystem};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Submissions amortized per doorbell (how full the batch was when the
/// worker got woken).
static SUBMIT_BATCH: LazyHistogram =
    LazyHistogram::new(Subsystem::Fuse, "fuse.ring.submit-batch-size");
/// Requests currently sitting in submission rings (pushed, not yet
/// claimed by a worker).
static RING_DEPTH: LazyGauge = LazyGauge::new(Subsystem::Fuse, "fuse.ring.queue-depth");
/// Requests a worker claimed per wakeup (the multi-reap win: 1 means the
/// ring degenerated to threaded behaviour).
static REAPED: LazyHistogram = LazyHistogram::new(Subsystem::Fuse, "fuse.ring.reaped-per-wakeup");

/// Lock-class names of the ring transport, ranked above the kernel table.
/// The submit fast path is lock-free; these cover the slow paths where a
/// lock still earns its keep.
pub mod lock_class {
    /// SQ teardown state: serializes shutdown drains
    /// (`Ring::fail_pending`) — rank 6.
    pub const SQ_STATE: &str = "fuse.ring.sq-state";
    /// The reaper parking lot (worker thread handle) — rank 7.
    pub const PARK_LOT: &str = "fuse.ring.park-lot";
    /// One completion slot's reply cell — leaf rank 8.
    pub const CQ_SLOT: &str = "fuse.ring.cq-slot";
}

/// Encodes the ring's lock ordering into the lockdep checker: SQ teardown
/// state, then the parking lot, then completion slots, all ranked above
/// the kernel's groups 0–5 so a transport entered under a ranked kernel
/// lock (`kernel.fd_offset` excepted at the checkpoints) still acquires
/// ascending. In particular the page-cache classes (groups 4–5) sit
/// below: background write-back enters the ring with no lock held, while
/// no ring path ever reaches back into the cache. Idempotent; runs on
/// every transport construction.
fn declare_ring_lock_discipline() {
    lockdep::ordering(&[
        // Groups 0–5 belong to the kernel table
        // (`cntr_kernel::table::lock_class`: the subsystem locks in 0–3,
        // the page-cache LRU and flusher classes in 4–5); leave them
        // untouched.
        &[],
        &[],
        &[],
        &[],
        &[],
        &[],
        &[lock_class::SQ_STATE],
        &[lock_class::PARK_LOT],
        &[lock_class::CQ_SLOT],
    ]);
}

/// One submission: the request plus everything the worker needs to
/// account and complete it without re-inspecting the request.
struct Sqe {
    req: Request,
    op: Opcode,
    req_bytes: usize,
    /// Submitter's trace id (0 = untraced), carried across the ring.
    trace: u64,
    slot: Arc<Slot>,
}

/// One completion, parked in the CQ until the delivery sweep.
struct Cqe {
    slot: Arc<Slot>,
    reply: Reply,
}

/// Where a completion lands: the submitting thread parks on `done` and
/// takes the reply out once it flips.
struct Slot {
    reply: Mutex<Option<Reply>>,
    done: AtomicBool,
    waiter: std::thread::Thread,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            reply: Mutex::new_class(lock_class::CQ_SLOT, None),
            done: AtomicBool::new(false),
            waiter: std::thread::current(),
        })
    }

    /// This thread's slot, reused across calls: `call` waits every
    /// request to completion before returning, so a submitter has at
    /// most one live slot use at a time and the allocation amortizes to
    /// zero. The `done` reset is published to the worker by the SQ
    /// push's release ordering.
    fn for_current_thread() -> Arc<Slot> {
        thread_local! {
            static SLOT: std::cell::RefCell<Option<Arc<Slot>>> =
                const { std::cell::RefCell::new(None) };
        }
        SLOT.with(|s| {
            let mut s = s.borrow_mut();
            match &*s {
                Some(slot) => {
                    slot.done.store(false, Ordering::Relaxed);
                    Arc::clone(slot)
                }
                None => {
                    let slot = Slot::new();
                    *s = Some(Arc::clone(&slot));
                    slot
                }
            }
        })
    }
}

/// Stores the reply, publishes `done`, and wakes the submitter. The only
/// writer of a slot is whoever popped its SQE off the ring (worker, or a
/// submitter self-healing after shutdown), so this runs exactly once.
fn deliver(slot: &Slot, reply: Reply) {
    *slot.reply.lock() = Some(reply);
    slot.done.store(true, Ordering::Release);
    slot.waiter.unpark();
}

struct ParkState {
    /// The worker's thread handle, for doorbells.
    worker: Option<std::thread::Thread>,
}

/// One worker's submission/completion ring pair.
struct Ring {
    sq: ArrayQueue<Sqe>,
    cq: ArrayQueue<Cqe>,
    /// Submissions since the last doorbell — the lock-free batch counter
    /// behind the adaptive flush.
    unflushed: AtomicUsize,
    /// The worker's queue-idle advertisement: set (SeqCst) before its
    /// final pre-park empty check, cleared after the park returns. A
    /// submitter reads it *after* pushing (SeqCst fence in between), so
    /// either the worker's empty check sees the new SQE, or the
    /// submitter sees `idle` and rings the doorbell — and an early
    /// doorbell is never lost, because an unpark token makes the
    /// worker's next park return immediately.
    idle: AtomicBool,
    /// Serializes shutdown drains (`fail_pending`): worker exit and
    /// self-healing submitters may race there, and interleaved drain
    /// sweeps would double-walk the CQ for no benefit.
    drain: Mutex<()>,
    park: Mutex<ParkState>,
}

impl Ring {
    fn new(depth: usize) -> Ring {
        Ring {
            sq: ArrayQueue::new(depth),
            cq: ArrayQueue::new(depth),
            unflushed: AtomicUsize::new(0),
            idle: AtomicBool::new(false),
            drain: Mutex::new_class(lock_class::SQ_STATE, ()),
            park: Mutex::new_class(lock_class::PARK_LOT, ParkState { worker: None }),
        }
    }

    /// Wakes the worker regardless of its parked state (an unpark token
    /// is never lost: if the worker is mid-batch, its next park returns
    /// immediately and it re-drains).
    fn doorbell(&self) {
        if let Some(t) = &self.park.lock().worker {
            t.unpark();
        }
    }

    /// Delivers everything in the CQ — the multi-reap sweep.
    fn sweep_cq(&self) {
        while let Some(cqe) = self.cq.pop() {
            deliver(&cqe.slot, cqe.reply);
        }
    }

    /// Parks a completion in the CQ; on a full CQ, sweeps and retries
    /// (the CQ has SQ capacity, so one sweep always makes room).
    fn complete(&self, slot: Arc<Slot>, reply: Reply) {
        let mut cqe = Cqe { slot, reply };
        while let Err(back) = self.cq.push(cqe) {
            cqe = back;
            self.sweep_cq();
        }
    }

    /// Fails every queued submission with `ENOTCONN` (shutdown
    /// self-healing: runs on worker exit, and from any submitter that
    /// observes the connection dead while waiting — so a push that raced
    /// past a worker's exit drain still completes).
    fn fail_pending(&self) {
        let _drain = self.drain.lock();
        while let Some(sqe) = self.sq.pop() {
            RING_DEPTH.dec();
            deliver(&sqe.slot, Reply::Err(Errno::ENOTCONN));
        }
        self.sweep_cq();
    }
}

/// Ops that must not sit unflushed in a submission queue: durability and
/// lifecycle boundaries flush the batch immediately.
fn is_sync_op(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Fsync | Opcode::Flush | Opcode::Init | Opcode::Destroy
    )
}

/// Shared SQ/CQ ring transport: `workers` reaper threads, each owning one
/// ring pair; submitters batch behind per-ring doorbells.
///
/// Like [`ThreadedTransport`](crate::conn::ThreadedTransport), a request
/// issued *from one of this connection's own workers* (FUSE-writeback
/// re-entrancy) executes inline on that worker instead of being queued
/// behind the very request the worker is handling.
pub struct RingTransport {
    id: u64,
    rings: Vec<Arc<Ring>>,
    next_ring: AtomicUsize,
    ring_batch: usize,
    /// Handler clone for re-entrant (worker-originated) requests.
    reentrant: Box<dyn Fn(Request) -> Reply + Send + Sync>,
    alive: Arc<AtomicBool>,
    stats: Arc<ConnStats>,
    workers: Vec<JoinHandle<()>>,
}

impl RingTransport {
    /// Spawns `workers` reaper threads, each with a `depth`-entry SQ/CQ
    /// pair, flushing submission batches of up to `batch`.
    pub fn new<H: FuseHandler + Clone + 'static>(
        handler: H,
        workers: usize,
        depth: usize,
        batch: usize,
    ) -> RingTransport {
        declare_ring_lock_discipline();
        let id = next_conn_id();
        let depth = depth.max(1);
        let batch = batch.clamp(1, depth);
        let alive = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(ConnStats::default());
        let mut rings = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..workers.max(1) {
            let ring = Arc::new(Ring::new(depth));
            rings.push(Arc::clone(&ring));
            let handler = handler.clone();
            let alive = Arc::clone(&alive);
            let stats = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                worker_loop(id, &ring, &handler, &alive, &stats)
            }));
        }
        let reentrant_handler = handler;
        RingTransport {
            id,
            rings,
            next_ring: AtomicUsize::new(0),
            ring_batch: batch,
            reentrant: Box::new(move |req| reentrant_handler.handle(req)),
            alive,
            stats,
            workers: handles,
        }
    }

    /// [`RingTransport::new`] with the knobs a [`FuseConfig`] carries.
    pub fn from_config<H: FuseHandler + Clone + 'static>(
        handler: H,
        config: &FuseConfig,
    ) -> RingTransport {
        RingTransport::new(
            handler,
            config.workers,
            config.ring_depth,
            config.ring_batch,
        )
    }

    /// Number of worker (reaper) threads, each owning one ring pair.
    pub fn worker_count(&self) -> usize {
        self.rings.len()
    }

    /// Waits for all workers to finish (after shutdown).
    pub fn join(mut self) {
        self.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RingTransport {
    fn drop(&mut self) {
        // Wake parked workers so they observe `!alive` and exit; without
        // this, dropping an un-shutdown transport would leak parked
        // threads until their park timeout.
        self.shutdown();
    }
}

fn worker_loop<H: FuseHandler>(
    conn_id: u64,
    ring: &Ring,
    handler: &H,
    alive: &AtomicBool,
    stats: &ConnStats,
) {
    WORKER_OF.with(|w| w.set(conn_id));
    ring.park.lock().worker = Some(std::thread::current());
    let mut idle_rounds = 0u32;
    loop {
        // Reap: claim the whole SQ in one pass.
        let mut batch = Vec::new();
        while let Some(sqe) = ring.sq.pop() {
            RING_DEPTH.dec();
            batch.push(sqe);
        }
        if batch.is_empty() {
            if !alive.load(Ordering::SeqCst) {
                break;
            }
            // Briefly poll before parking: under load the next batch is
            // usually already in flight, and a park/unpark round trip
            // costs more than the spin. Kept short — on a single-CPU box
            // a spinning reaper only delays the submitters it feeds.
            idle_rounds += 1;
            if idle_rounds < 16 {
                std::hint::spin_loop();
                continue;
            }
            // Queue-idle: advertise `idle`, then re-check the SQ. The
            // park is untimed — a timed park arms an hrtimer per wait,
            // which costs more than the entire rest of the hot path —
            // so wakeups must be provably lossless: the SeqCst fence
            // pairs with the submitter's push-then-check (see
            // `Ring::idle`), so either the re-check below sees the new
            // SQE, or the submitter sees `idle` and its doorbell leaves
            // an unpark token that makes this park return immediately.
            ring.idle.store(true, Ordering::SeqCst);
            std::sync::atomic::fence(Ordering::SeqCst);
            if ring.sq.is_empty() && alive.load(Ordering::SeqCst) {
                // Park-point checkpoint: a reaper blocking while holding
                // any lock would stall every request on this ring.
                #[cfg(any(debug_assertions, feature = "lockdep"))]
                lockdep::assert_no_locks_held_except(&[]);
                std::thread::park();
            }
            ring.idle.store(false, Ordering::SeqCst);
            continue;
        }
        idle_rounds = 0;
        REAPED.record(batch.len() as u64);
        // Reap-point checkpoint: the handlers below may re-enter the
        // kernel (writeback), so the worker must dispatch lock-free.
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        lockdep::assert_no_locks_held_except(&[]);
        let single = batch.len() == 1;
        for sqe in batch {
            let Sqe {
                req,
                op,
                req_bytes,
                trace,
                slot,
            } = sqe;
            let reply = if alive.load(Ordering::Acquire) {
                // Adopt the submitter's trace so handler/storage spans
                // land on the right request.
                let _scope = TraceScope::enter(trace);
                let reply = {
                    let _span = Span::start_for(trace, "handler");
                    handler.handle(req)
                };
                stats.record(op, req_bytes, &reply);
                reply
            } else {
                Reply::Err(Errno::ENOTCONN)
            };
            if single {
                // A one-element batch has nothing to sweep together —
                // skip the CQ round trip and deliver in place.
                deliver(&slot, reply);
            } else {
                ring.complete(slot, reply);
            }
        }
        // Deliver the whole batch in one sweep — completions land
        // together, submitters wake together.
        ring.sweep_cq();
    }
    // Shutdown drain: anything still queued (or racing in) fails cleanly.
    // The fence makes this drain catch every push whose submitter read a
    // stale `alive == true` afterwards (its post-push SeqCst fence orders
    // before this one), so no waiter is left parked with an unserved SQE.
    std::sync::atomic::fence(Ordering::SeqCst);
    ring.fail_pending();
    ring.park.lock().worker = None;
}

impl Transport for RingTransport {
    fn call(&self, req: Request) -> Reply {
        // Blocking-context checkpoint: this path parks on the completion
        // slot (or runs the handler inline), so entering with a lock held
        // that a re-entrant path could need is the PR-3 writeback
        // deadlock class. `kernel.fd_offset` is exempt — see
        // `InlineTransport::call`.
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        lockdep::assert_no_locks_held_except(&["kernel.fd_offset"]);
        if !self.alive.load(Ordering::Acquire) {
            return Reply::Err(Errno::ENOTCONN);
        }
        let (op, req_bytes) = (req.opcode(), req.wire_bytes());
        let _req_guard = ReqGuard::begin(op);
        if WORKER_OF.with(std::cell::Cell::get) == self.id {
            // Re-entrant request from one of our own reapers: execute it
            // on this thread rather than deadlocking the ring (see type
            // docs).
            let reply = {
                let _span = Span::start("handler");
                (self.reentrant)(req)
            };
            self.stats.record(op, req_bytes, &reply);
            return reply;
        }
        // The transport span covers push + batch wait + park + wake.
        let _span = Span::start("transport");
        let trace = obs::trace::current_trace();
        let ring = &self.rings[self.next_ring.fetch_add(1, Ordering::Relaxed) % self.rings.len()];
        let slot = Slot::for_current_thread();
        let mut sqe = Sqe {
            req,
            op,
            req_bytes,
            trace,
            slot: Arc::clone(&slot),
        };
        // Submit. A full SQ means the worker is behind: ring the doorbell
        // and spin-yield until a slot frees (bounded by ring depth, like
        // io_uring's sq-full backpressure).
        while let Err(back) = ring.sq.push(sqe) {
            sqe = back;
            if !self.alive.load(Ordering::Acquire) {
                return Reply::Err(Errno::ENOTCONN);
            }
            ring.doorbell();
            std::thread::yield_now();
        }
        RING_DEPTH.inc();
        // Adaptive flush, lock-free: ring the doorbell when the batch
        // fills, the op is a sync boundary, or the worker advertises
        // queue-idle (holding the submission back would save nothing —
        // and the untimed worker park *requires* the doorbell then: the
        // fence pairs with the worker's idle-then-recheck sequence, so
        // either the worker's re-check sees this push, or this load sees
        // `idle` and the doorbell's unpark token wakes it; see
        // `Ring::idle`). Every doorbell closes the batch: the counter
        // swap may race another flusher, which only splits one batch
        // across two histogram samples, never loses a request. While the
        // worker is busy reaping, nothing flushes below the batch
        // threshold — submissions pile up and get reaped together.
        std::sync::atomic::fence(Ordering::SeqCst);
        let unflushed = ring.unflushed.fetch_add(1, Ordering::AcqRel) + 1;
        if unflushed >= self.ring_batch || is_sync_op(op) || ring.idle.load(Ordering::SeqCst) {
            let batch = ring.unflushed.swap(0, Ordering::AcqRel);
            if batch > 0 {
                SUBMIT_BATCH.record(batch as u64);
            }
            ring.doorbell();
        }
        // Completion wait: a short spin (a fast handler on another core
        // beats the park round trip), then an *untimed* park — a timed
        // one arms an hrtimer per wait, which dwarfs the rest of the hot
        // path. `deliver` always flips `done` before unparking, so the
        // re-check-then-park loop cannot sleep through a completion. If
        // the connection died, drain the ring ourselves and our own SQE
        // fails with the rest; a submitter that instead reads a stale
        // `alive == true` here is covered by the worker's fence-ordered
        // exit drain (see `worker_loop`), which is guaranteed to see our
        // push and deliver ENOTCONN.
        let mut spins = 0u32;
        while !slot.done.load(Ordering::Acquire) {
            if spins < 16 {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            if !self.alive.load(Ordering::SeqCst) {
                ring.fail_pending();
            }
            std::thread::park();
        }
        let reply = slot.reply.lock().take();
        reply.unwrap_or(Reply::Err(Errno::ENOTCONN))
    }

    fn shutdown(&self) {
        self.alive.store(false, Ordering::SeqCst);
        for ring in &self.rings {
            ring.doorbell();
        }
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn stats(&self) -> ConnSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::RequestCtx;
    use cntr_types::Ino;

    #[derive(Clone)]
    struct EchoHandler;

    impl FuseHandler for EchoHandler {
        fn handle(&self, req: Request) -> Reply {
            match req {
                Request::Getattr { .. } => Reply::Err(Errno::ENOENT),
                Request::Readlink { .. } => Reply::Target("echo".into()),
                _ => Reply::Ok,
            }
        }
    }

    fn lookup() -> Request {
        Request::Lookup {
            parent: Ino::ROOT,
            name: "x".into(),
            ctx: RequestCtx::default(),
        }
    }

    #[test]
    fn ring_round_trip_and_stats() {
        let t = RingTransport::new(EchoHandler, 2, 8, 4);
        assert!(matches!(t.call(lookup()), Reply::Ok));
        assert!(matches!(
            t.call(Request::Getattr { ino: Ino(5) }),
            Reply::Err(Errno::ENOENT)
        ));
        let s = t.stats();
        assert_eq!(s.lookups, 1);
        assert_eq!(s.getattrs, 1);
        assert_eq!(s.total(), 2);
        assert!(s.bytes_in > 0);
        t.join();
    }

    #[test]
    fn ring_shutdown_yields_enotconn() {
        let t = RingTransport::new(EchoHandler, 1, 4, 2);
        t.shutdown();
        assert!(!t.is_alive());
        assert!(matches!(t.call(lookup()), Reply::Err(Errno::ENOTCONN)));
        t.join();
    }

    #[test]
    fn ring_serves_concurrently_from_many_submitters() {
        let t = Arc::new(RingTransport::new(EchoHandler, 4, 16, 4));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            joins.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    assert!(matches!(t.call(lookup()), Reply::Ok));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(t.stats().lookups, 800);
        t.shutdown();
    }

    /// A single ring of depth 1 forces the sq-full backpressure path:
    /// submitters must spin-yield until the reaper frees a slot, and
    /// every request still completes exactly once.
    #[test]
    fn ring_depth_one_backpressure() {
        let t = Arc::new(RingTransport::new(EchoHandler, 1, 1, 1));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    assert!(matches!(t.call(lookup()), Reply::Ok));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(t.stats().lookups, 200);
        t.shutdown();
    }

    /// Entering the ring with a lock held is the PR-3 writeback deadlock
    /// class; the checkpoint must turn it into a deterministic panic that
    /// names the held class, exactly like the other transports.
    #[test]
    #[cfg(any(debug_assertions, feature = "lockdep"))]
    fn ring_call_with_lock_held_panics_at_the_checkpoint() {
        let err = std::thread::spawn(|| {
            let t = RingTransport::new(EchoHandler, 2, 8, 4);
            let guard = parking_lot::Mutex::new_class("fuse.test.outer", ());
            let _held = guard.lock();
            t.call(lookup())
        })
        .join()
        .expect_err("call with a lock held must be rejected");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a message");
        assert!(msg.contains("blocking-context violation"), "{msg}");
        assert!(msg.contains("fuse.test.outer"), "{msg}");
    }

    #[test]
    fn ring_join_after_shutdown_terminates_workers() {
        let t = RingTransport::new(EchoHandler, 3, 8, 8);
        assert_eq!(t.worker_count(), 3);
        for _ in 0..10 {
            assert!(matches!(t.call(lookup()), Reply::Ok));
        }
        t.join();
    }
}
