//! Instrumentation for the zero-copy (splice) proofs.
//!
//! The splice data path claims that a payload buffer crosses the whole
//! stack — storage, FUSE server, `/dev/fuse`, client — as one allocation.
//! Virtual-time charges cannot prove that (they are bookkeeping); these
//! wrappers do, by recording the *pointer identity* of every payload at
//! every hop:
//!
//! * [`PayloadLog`] — the shared trace of `(hop, ptr, len)` observations;
//! * [`CountingTransport`] — a [`Transport`] middlebox recording payload
//!   pointers as requests/replies cross the protocol boundary;
//! * [`InstrumentedFs`] — a [`Filesystem`] wrapper recording the pointers
//!   the server-side storage produces (reads) and receives (writes);
//! * [`copies_along`] — folds a pointer chain into a copy count: every
//!   pointer change between adjacent hops is one memcpy.
//!
//! The wrappers are shipped (not `#[cfg(test)]`) so integration tests in
//! other crates — `cntr-kernel`'s differential oracle, the criterion
//! benches — can reuse them; they are inert unless constructed.

use crate::conn::{ConnSnapshot, Transport};
use crate::proto::{Reply, Request};
use bytes::Bytes;
use cntr_fs::{FallocateMode, Fh, Filesystem, FsContext, FsFeatures, XattrFlags};
use cntr_types::{
    DevId, Dirent, FileType, Ino, Mode, OpenFlags, RenameFlags, SetAttr, Stat, Statfs, SysResult,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// One payload observation: which hop saw it, where it lived, how long it
/// was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadHop {
    /// Hop label, e.g. `"fs-read"`, `"wire-reply"`.
    pub hop: &'static str,
    /// Address of the first payload byte.
    pub ptr: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// A shared, ordered trace of payload observations.
pub struct PayloadLog {
    hops: Mutex<Vec<PayloadHop>>,
}

impl Default for PayloadLog {
    fn default() -> PayloadLog {
        PayloadLog {
            hops: Mutex::new_class("fuse.testing.payload_log", Vec::new()),
        }
    }
}

impl PayloadLog {
    /// An empty log.
    pub fn new() -> Arc<PayloadLog> {
        Arc::new(PayloadLog::default())
    }

    /// Records one observation.
    pub fn record(&self, hop: &'static str, data: &Bytes) {
        self.hops.lock().push(PayloadHop {
            hop,
            ptr: data.as_ptr() as usize,
            len: data.len(),
        });
    }

    /// The most recent observation at `hop`.
    pub fn last(&self, hop: &str) -> Option<PayloadHop> {
        self.hops
            .lock()
            .iter()
            .rev()
            .find(|h| h.hop == hop)
            .cloned()
    }

    /// Every recorded observation, in order.
    pub fn all(&self) -> Vec<PayloadHop> {
        self.hops.lock().clone()
    }

    /// Drops all observations.
    pub fn clear(&self) {
        self.hops.lock().clear();
    }
}

/// Counts the memcpys along a pointer chain: adjacent hops disagreeing on
/// the payload address mean the bytes moved by copy, not by reference.
pub fn copies_along(chain: &[usize]) -> usize {
    chain.windows(2).filter(|w| w[0] != w[1]).count()
}

/// A transport middlebox that records payload pointers as they cross the
/// protocol boundary, then forwards to the wrapped transport.
pub struct CountingTransport {
    inner: Arc<dyn Transport>,
    log: Arc<PayloadLog>,
}

impl CountingTransport {
    /// Wraps `inner`, recording into `log`.
    pub fn new(inner: Arc<dyn Transport>, log: Arc<PayloadLog>) -> Arc<CountingTransport> {
        Arc::new(CountingTransport { inner, log })
    }
}

impl Transport for CountingTransport {
    fn call(&self, req: Request) -> Reply {
        if let Request::Write { data, .. } = &req {
            self.log.record("wire-request", data);
        }
        let reply = self.inner.call(req);
        if let Reply::Data(data) = &reply {
            self.log.record("wire-reply", data);
        }
        reply
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn is_alive(&self) -> bool {
        self.inner.is_alive()
    }

    fn stats(&self) -> ConnSnapshot {
        self.inner.stats()
    }
}

/// A [`Filesystem`] wrapper recording the payload pointers the server-side
/// storage produces (`read_bytes` results, hop `"fs-read"`) and receives
/// (`write_bytes` inputs, hop `"fs-write"`). All other operations delegate
/// untouched.
pub struct InstrumentedFs {
    inner: Arc<dyn Filesystem>,
    log: Arc<PayloadLog>,
}

impl InstrumentedFs {
    /// Wraps `inner`, recording into `log`.
    pub fn new(inner: Arc<dyn Filesystem>, log: Arc<PayloadLog>) -> Arc<InstrumentedFs> {
        Arc::new(InstrumentedFs { inner, log })
    }
}

impl Filesystem for InstrumentedFs {
    fn fs_id(&self) -> DevId {
        self.inner.fs_id()
    }

    fn fs_type(&self) -> &'static str {
        self.inner.fs_type()
    }

    fn fs_options(&self) -> String {
        self.inner.fs_options()
    }

    fn root_ino(&self) -> Ino {
        self.inner.root_ino()
    }

    fn features(&self) -> FsFeatures {
        self.inner.features()
    }

    fn lookup(&self, parent: Ino, name: &str) -> SysResult<Stat> {
        self.inner.lookup(parent, name)
    }

    fn getattr(&self, ino: Ino) -> SysResult<Stat> {
        self.inner.getattr(ino)
    }

    fn setattr(&self, ino: Ino, attr: &SetAttr, ctx: &FsContext) -> SysResult<Stat> {
        self.inner.setattr(ino, attr, ctx)
    }

    fn mknod(
        &self,
        parent: Ino,
        name: &str,
        ftype: FileType,
        mode: Mode,
        rdev: u64,
        ctx: &FsContext,
    ) -> SysResult<Stat> {
        self.inner.mknod(parent, name, ftype, mode, rdev, ctx)
    }

    fn mkdir(&self, parent: Ino, name: &str, mode: Mode, ctx: &FsContext) -> SysResult<Stat> {
        self.inner.mkdir(parent, name, mode, ctx)
    }

    fn unlink(&self, parent: Ino, name: &str) -> SysResult<()> {
        self.inner.unlink(parent, name)
    }

    fn rmdir(&self, parent: Ino, name: &str) -> SysResult<()> {
        self.inner.rmdir(parent, name)
    }

    fn symlink(&self, parent: Ino, name: &str, target: &str, ctx: &FsContext) -> SysResult<Stat> {
        self.inner.symlink(parent, name, target, ctx)
    }

    fn readlink(&self, ino: Ino) -> SysResult<String> {
        self.inner.readlink(ino)
    }

    fn link(&self, ino: Ino, newparent: Ino, newname: &str) -> SysResult<Stat> {
        self.inner.link(ino, newparent, newname)
    }

    fn rename(
        &self,
        parent: Ino,
        name: &str,
        newparent: Ino,
        newname: &str,
        flags: RenameFlags,
    ) -> SysResult<()> {
        self.inner.rename(parent, name, newparent, newname, flags)
    }

    fn open(&self, ino: Ino, flags: OpenFlags) -> SysResult<Fh> {
        self.inner.open(ino, flags)
    }

    fn release(&self, ino: Ino, fh: Fh) -> SysResult<()> {
        self.inner.release(ino, fh)
    }

    fn read(&self, ino: Ino, fh: Fh, offset: u64, buf: &mut [u8]) -> SysResult<usize> {
        self.inner.read(ino, fh, offset, buf)
    }

    fn write(&self, ino: Ino, fh: Fh, offset: u64, data: &[u8]) -> SysResult<usize> {
        self.inner.write(ino, fh, offset, data)
    }

    fn read_bytes(&self, ino: Ino, fh: Fh, offset: u64, len: usize) -> SysResult<Bytes> {
        let out = self.inner.read_bytes(ino, fh, offset, len)?;
        self.log.record("fs-read", &out);
        Ok(out)
    }

    fn write_bytes(&self, ino: Ino, fh: Fh, offset: u64, data: Bytes) -> SysResult<usize> {
        self.log.record("fs-write", &data);
        self.inner.write_bytes(ino, fh, offset, data)
    }

    fn fsync(&self, ino: Ino, fh: Fh, datasync: bool) -> SysResult<()> {
        self.inner.fsync(ino, fh, datasync)
    }

    fn readdir(&self, ino: Ino) -> SysResult<Vec<Dirent>> {
        self.inner.readdir(ino)
    }

    fn statfs(&self) -> SysResult<Statfs> {
        self.inner.statfs()
    }

    fn getxattr(&self, ino: Ino, name: &str) -> SysResult<Vec<u8>> {
        self.inner.getxattr(ino, name)
    }

    fn setxattr(&self, ino: Ino, name: &str, value: &[u8], flags: XattrFlags) -> SysResult<()> {
        self.inner.setxattr(ino, name, value, flags)
    }

    fn listxattr(&self, ino: Ino) -> SysResult<Vec<String>> {
        self.inner.listxattr(ino)
    }

    fn removexattr(&self, ino: Ino, name: &str) -> SysResult<()> {
        self.inner.removexattr(ino, name)
    }

    fn fallocate(
        &self,
        ino: Ino,
        fh: Fh,
        offset: u64,
        len: u64,
        mode: FallocateMode,
    ) -> SysResult<()> {
        self.inner.fallocate(ino, fh, offset, len, mode)
    }

    fn forget(&self, ino: Ino, nlookup: u64) {
        self.inner.forget(ino, nlookup);
    }

    fn export_handle(&self, ino: Ino) -> SysResult<u64> {
        self.inner.export_handle(ino)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_counting_over_pointer_chains() {
        let p = 0x1000usize;
        assert_eq!(copies_along(&[p, p, p]), 0);
        assert_eq!(copies_along(&[p, p + 8, p + 8]), 1);
        assert_eq!(copies_along(&[p, p + 8, p]), 2);
        assert_eq!(copies_along(&[p]), 0);
    }

    #[test]
    fn log_records_and_recalls() {
        let log = PayloadLog::new();
        let b = Bytes::from(vec![1u8; 16]);
        log.record("fs-read", &b);
        log.record("wire-reply", &b.slice(4..));
        let fs = log.last("fs-read").unwrap();
        assert_eq!(fs.ptr, b.as_ptr() as usize);
        assert_eq!(fs.len, 16);
        let wire = log.last("wire-reply").unwrap();
        assert_eq!(wire.ptr, fs.ptr + 4);
        assert_eq!(log.all().len(), 2);
        log.clear();
        assert!(log.last("fs-read").is_none());
    }
}
