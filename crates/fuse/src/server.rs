//! The userspace half: request handlers.
//!
//! [`FuseHandler`] is what a FUSE daemon implements. [`FsHandler`] adapts
//! any [`Filesystem`] into a handler — the moral equivalent of serving a
//! directory tree 1:1. CNTR's passthrough server (which resolves inodes to
//! paths in *another mount namespace*, with the open+stat hardlink
//! detection the paper describes) lives in `cntr-core` and implements this
//! same trait.

use crate::proto::{InitFlags, Reply, Request, RequestCtx};
use cntr_fs::{Filesystem, FsContext};
use cntr_types::{Gid, Ino, SysResult, Uid};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A FUSE request handler (the userspace daemon).
pub trait FuseHandler: Send + Sync + 'static {
    /// Serves one request.
    fn handle(&self, req: Request) -> Reply;
}

fn ctx_of(ctx: RequestCtx) -> FsContext {
    FsContext {
        uid: Uid(ctx.uid),
        gid: Gid(ctx.gid),
        groups: Vec::new(),
        cap_fsetid: ctx.uid == 0,
    }
}

fn reply<T>(r: SysResult<T>, f: impl FnOnce(T) -> Reply) -> Reply {
    match r {
        Ok(v) => f(v),
        Err(e) => Reply::Err(e),
    }
}

/// Serves a [`Filesystem`] over FUSE.
///
/// Tracks per-inode `nlookup` counts and forwards forgets to the backing
/// filesystem once they reach zero, as the kernel protocol requires.
#[derive(Clone)]
pub struct FsHandler {
    fs: Arc<dyn Filesystem>,
    supported: InitFlags,
    nlookup: Arc<Mutex<HashMap<Ino, u64>>>,
}

impl FsHandler {
    /// Creates a handler advertising full optimization support.
    pub fn new(fs: Arc<dyn Filesystem>) -> FsHandler {
        FsHandler {
            fs,
            supported: InitFlags::all(),
            nlookup: Arc::new(Mutex::new_class("fuse.server.nlookup", HashMap::new())),
        }
    }

    /// Restricts the advertised INIT flags (negotiation tests).
    #[must_use]
    pub fn with_supported(mut self, flags: InitFlags) -> FsHandler {
        self.supported = flags;
        self
    }

    /// The backing filesystem.
    pub fn fs(&self) -> &Arc<dyn Filesystem> {
        &self.fs
    }

    /// Live inodes the kernel still references.
    pub fn live_inodes(&self) -> usize {
        self.nlookup.lock().len()
    }

    fn remember(&self, ino: Ino) {
        *self.nlookup.lock().entry(ino).or_insert(0) += 1;
    }

    fn forget(&self, ino: Ino, n: u64) {
        let mut map = self.nlookup.lock();
        if let Some(count) = map.get_mut(&ino) {
            *count = count.saturating_sub(n);
            if *count == 0 {
                map.remove(&ino);
                self.fs.forget(ino, n);
            }
        }
    }

    /// Builds a READ reply. The common case — the filesystem answers the
    /// whole request in one `read_bytes` call — forwards that buffer as the
    /// reply with no copy; a filesystem that returns short (a chunk
    /// boundary) gets its pieces gathered into one reply buffer, the same
    /// single copy a real FUSE server pays assembling its reply from
    /// backing-store reads.
    fn read_reply(
        &self,
        ino: Ino,
        fh: cntr_fs::Fh,
        offset: u64,
        size: usize,
    ) -> cntr_types::SysResult<bytes::Bytes> {
        // The storage span: time the backing filesystem spends producing
        // the reply, attributed to the request's trace (set by the
        // transport worker or the inline caller).
        let _span = obs::trace::Span::start("storage");
        self.fs.read_bytes_gather(ino, fh, offset, size)
    }
}

impl FuseHandler for FsHandler {
    fn handle(&self, req: Request) -> Reply {
        match req {
            Request::Init { wanted } => Reply::Init {
                granted: wanted.intersect(self.supported),
            },
            Request::Lookup { parent, name, .. } => reply(self.fs.lookup(parent, &name), |st| {
                self.remember(st.ino);
                Reply::Entry(st)
            }),
            Request::Forget { ino, nlookup } => {
                self.forget(ino, nlookup);
                Reply::Ok
            }
            Request::BatchForget { items } => {
                for (ino, n) in items {
                    self.forget(ino, n);
                }
                Reply::Ok
            }
            Request::Getattr { ino } => reply(self.fs.getattr(ino), Reply::Attr),
            Request::Setattr { ino, attr, ctx } => {
                reply(self.fs.setattr(ino, &attr, &ctx_of(ctx)), Reply::Attr)
            }
            Request::Readlink { ino } => reply(self.fs.readlink(ino), Reply::Target),
            Request::Symlink {
                parent,
                name,
                target,
                ctx,
            } => reply(
                self.fs.symlink(parent, &name, &target, &ctx_of(ctx)),
                |st| {
                    self.remember(st.ino);
                    Reply::Entry(st)
                },
            ),
            Request::Mknod {
                parent,
                name,
                ftype,
                mode,
                rdev,
                ctx,
            } => reply(
                self.fs
                    .mknod(parent, &name, ftype, mode, rdev, &ctx_of(ctx)),
                |st| {
                    self.remember(st.ino);
                    Reply::Entry(st)
                },
            ),
            Request::Mkdir {
                parent,
                name,
                mode,
                ctx,
            } => reply(self.fs.mkdir(parent, &name, mode, &ctx_of(ctx)), |st| {
                self.remember(st.ino);
                Reply::Entry(st)
            }),
            Request::Unlink { parent, name } => {
                reply(self.fs.unlink(parent, &name), |()| Reply::Ok)
            }
            Request::Rmdir { parent, name } => reply(self.fs.rmdir(parent, &name), |()| Reply::Ok),
            Request::Rename {
                parent,
                name,
                newparent,
                newname,
                flags,
            } => reply(
                self.fs.rename(parent, &name, newparent, &newname, flags),
                |()| Reply::Ok,
            ),
            Request::Link {
                ino,
                newparent,
                newname,
            } => reply(self.fs.link(ino, newparent, &newname), |st| {
                self.remember(st.ino);
                Reply::Entry(st)
            }),
            Request::Open { ino, flags } => reply(self.fs.open(ino, flags), |fh| Reply::Opened {
                fh: fh.0,
                keep_cache: self.supported.keep_cache,
            }),
            Request::Read {
                ino,
                fh,
                offset,
                size,
            } => match self.read_reply(ino, cntr_fs::Fh(fh), offset, size as usize) {
                Ok(data) => Reply::Data(data),
                Err(e) => Reply::Err(e),
            },
            Request::Write {
                ino,
                fh,
                offset,
                data,
            } => reply(
                {
                    let _span = obs::trace::Span::start("storage");
                    // The payload Bytes moves into the filesystem by
                    // reference: blob-backed stores retain slices of it
                    // (zero copy).
                    self.fs.write_bytes(ino, cntr_fs::Fh(fh), offset, data)
                },
                |n| Reply::Written(n as u32),
            ),
            Request::Statfs => reply(self.fs.statfs(), Reply::Statfs),
            Request::Release { ino, fh } => {
                reply(self.fs.release(ino, cntr_fs::Fh(fh)), |()| Reply::Ok)
            }
            Request::Fsync { ino, fh, datasync } => {
                reply(self.fs.fsync(ino, cntr_fs::Fh(fh), datasync), |()| {
                    Reply::Ok
                })
            }
            Request::Readdir { ino } => reply(self.fs.readdir(ino), Reply::Dirents),
            Request::Getxattr { ino, name } => reply(self.fs.getxattr(ino, &name), Reply::Xattr),
            Request::Setxattr {
                ino,
                name,
                value,
                flags,
            } => reply(self.fs.setxattr(ino, &name, &value, flags), |()| Reply::Ok),
            Request::Listxattr { ino } => reply(self.fs.listxattr(ino), Reply::XattrNames),
            Request::Removexattr { ino, name } => {
                reply(self.fs.removexattr(ino, &name), |()| Reply::Ok)
            }
            Request::Access { ino, .. } => {
                // Permission checking happens in the client VFS; the server
                // only verifies existence (default_permissions model).
                reply(self.fs.getattr(ino), |_| Reply::Ok)
            }
            Request::Create {
                parent,
                name,
                mode,
                flags,
                ctx,
            } => {
                let created = self.fs.mknod(
                    parent,
                    &name,
                    cntr_types::FileType::Regular,
                    mode,
                    0,
                    &ctx_of(ctx),
                );
                match created {
                    Ok(st) => match self.fs.open(st.ino, flags) {
                        Ok(fh) => {
                            self.remember(st.ino);
                            Reply::Created { stat: st, fh: fh.0 }
                        }
                        Err(e) => Reply::Err(e),
                    },
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Fallocate {
                ino,
                fh,
                offset,
                len,
                mode,
            } => reply(
                self.fs.fallocate(ino, cntr_fs::Fh(fh), offset, len, mode),
                |()| Reply::Ok,
            ),
            Request::Flush { .. } => Reply::Ok,
            Request::Destroy => Reply::Ok,
        }
    }
}

impl FuseHandler for Arc<dyn FuseHandler> {
    fn handle(&self, req: Request) -> Reply {
        (**self).handle(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_fs::memfs::memfs;
    use cntr_types::Errno;
    use cntr_types::{DevId, Mode, OpenFlags, SimClock};

    fn handler() -> FsHandler {
        FsHandler::new(memfs(DevId(1), SimClock::new()))
    }

    #[test]
    fn init_negotiation_intersects() {
        let h = handler().with_supported(InitFlags::none());
        let r = h.handle(Request::Init {
            wanted: InitFlags::all(),
        });
        match r {
            Reply::Init { granted } => assert_eq!(granted, InitFlags::none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_then_read_roundtrip() {
        let h = handler();
        let ctx = RequestCtx::default();
        let (ino, fh) = match h.handle(Request::Create {
            parent: Ino::ROOT,
            name: "f".into(),
            mode: Mode::RW_R__R__,
            flags: OpenFlags::RDWR,
            ctx,
        }) {
            Reply::Created { stat, fh } => (stat.ino, fh),
            other => panic!("unexpected {other:?}"),
        };
        assert!(matches!(
            h.handle(Request::Write {
                ino,
                fh,
                offset: 0,
                data: bytes::Bytes::from_static(b"served"),
            }),
            Reply::Written(6)
        ));
        match h.handle(Request::Read {
            ino,
            fh,
            offset: 0,
            size: 16,
        }) {
            Reply::Data(d) => assert_eq!(&d[..], b"served"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nlookup_counts_and_forget() {
        let h = handler();
        let ctx = RequestCtx::default();
        h.handle(Request::Mkdir {
            parent: Ino::ROOT,
            name: "d".into(),
            mode: Mode::RWXR_XR_X,
            ctx,
        });
        // Look it up twice: nlookup = 3 (1 from mkdir + 2 lookups).
        for _ in 0..2 {
            h.handle(Request::Lookup {
                parent: Ino::ROOT,
                name: "d".into(),
                ctx,
            });
        }
        assert_eq!(h.live_inodes(), 1);
        h.handle(Request::Forget {
            ino: Ino(2),
            nlookup: 3,
        });
        assert_eq!(h.live_inodes(), 0);
    }

    #[test]
    fn batch_forget_drops_many() {
        let h = handler();
        let ctx = RequestCtx::default();
        for i in 0..10 {
            h.handle(Request::Mkdir {
                parent: Ino::ROOT,
                name: format!("d{i}"),
                mode: Mode::RWXR_XR_X,
                ctx,
            });
        }
        assert_eq!(h.live_inodes(), 10);
        let items: Vec<(Ino, u64)> = (2..12).map(|i| (Ino(i), 1)).collect();
        h.handle(Request::BatchForget { items });
        assert_eq!(h.live_inodes(), 0);
    }

    #[test]
    fn errors_are_replies_not_panics() {
        let h = handler();
        assert!(matches!(
            h.handle(Request::Getattr { ino: Ino(999) }),
            Reply::Err(Errno::ENOENT)
        ));
        assert!(matches!(
            h.handle(Request::Unlink {
                parent: Ino::ROOT,
                name: "missing".into()
            }),
            Reply::Err(Errno::ENOENT)
        ));
    }
}
