//! A model of the FUSE protocol and its kernel/userspace halves.
//!
//! CNTR is built on FUSE (paper §3.1): the slim container's kernel forwards
//! VFS requests through `/dev/fuse` to the CntrFS server, which may live in a
//! different mount namespace (the fat container or the host). This crate
//! reproduces that machinery:
//!
//! * [`proto`] — the request/reply protocol with real FUSE opcode numbers
//!   and the INIT negotiation flags behind every §3.3 optimization
//!   (`FUSE_WRITEBACK_CACHE`, `FUSE_PARALLEL_DIROPS`, `FUSE_ASYNC_READ`,
//!   splice, batched `FORGET`),
//! * [`conn`] — the `/dev/fuse` queue with the [`conn::Transport`] trait
//!   and two of its three implementations: **inline** (deterministic,
//!   same-thread) and **threaded** (real worker threads over crossbeam
//!   channels, with FUSE-writeback re-entrancy avoidance — used by the
//!   Figure 4 runner and the concurrency stress tests),
//! * [`ring`] — the third transport, FUSE-over-io_uring style: per-worker
//!   submission/completion ring pairs, batched doorbells, multi-reap
//!   completions — one worker wakeup serves many requests,
//! * [`client`] — the kernel half: a [`cntr_fs::Filesystem`] implementation
//!   that turns VFS calls into FUSE requests, with entry/attr caches,
//!   readahead, forget batching and the cost accounting that makes the
//!   paper's Figure 2/3/4 shapes reproducible,
//! * [`server`] — the userspace half: a handler trait plus [`FsHandler`],
//!   which serves any `Filesystem` over FUSE (CNTR's own passthrough
//!   handler lives in `cntr-core`),
//! * [`testing`] — payload-pointer instrumentation ([`CountingTransport`],
//!   [`InstrumentedFs`]) proving the splice path really moves buffers by
//!   reference: zero memcpys from storage to caller when splice is
//!   negotiated.

pub mod client;
pub mod config;
pub mod conn;
pub mod proto;
pub mod ring;
pub mod server;
pub mod testing;

pub use client::FuseClientFs;
pub use config::FuseConfig;
pub use conn::{ConnStats, InlineTransport, ThreadedTransport, Transport};
pub use proto::{InitFlags, Opcode, Reply, Request};
pub use ring::RingTransport;
pub use server::{FsHandler, FuseHandler};
pub use testing::{copies_along, CountingTransport, InstrumentedFs, PayloadLog};
