//! FUSE mount configuration.

use crate::proto::InitFlags;

/// Configuration of one FUSE mount (kernel side).
#[derive(Debug, Clone, Copy)]
pub struct FuseConfig {
    /// Optimization flags requested at INIT.
    pub flags: InitFlags,
    /// Server worker threads (paper §3.3 "Multithreading"; drives Figure 4).
    pub workers: usize,
    /// Maximum bytes per READ request (`max_read`; 128 KiB as in CNTR).
    pub max_read: usize,
    /// Entry-cache capacity (dentries).
    pub entry_cache_cap: usize,
    /// Attribute-cache capacity (inodes).
    pub attr_cache_cap: usize,
    /// Forgets queued before a flush.
    pub forget_batch: usize,
    /// Metadata pipeline depth when `parallel_dirops` is on: how many
    /// lookup round trips the kernel keeps in flight.
    pub meta_pipeline: usize,
    /// Per-worker submission/completion ring capacity when the `ring`
    /// flag is negotiated (entries; io_uring's `sq_entries` analog).
    pub ring_depth: usize,
    /// Submissions accumulated before the doorbell rings when the worker
    /// is already busy (adaptive flush still fires immediately on a parked
    /// worker or a sync-op boundary).
    pub ring_batch: usize,
}

impl FuseConfig {
    /// The shipping configuration: every optimization on (splice-write
    /// included, now that batched write-back makes it profitable), 4 worker
    /// threads.
    pub const fn optimized() -> FuseConfig {
        FuseConfig {
            flags: InitFlags::cntr_default(),
            workers: 4,
            max_read: 128 * 1024,
            entry_cache_cap: 65_536,
            attr_cache_cap: 65_536,
            forget_batch: 64,
            meta_pipeline: 4,
            ring_depth: 64,
            ring_batch: 8,
        }
    }

    /// The configuration the paper published (§3.3): identical to
    /// [`FuseConfig::optimized`] except splice-write stays off. The
    /// Phoronix figure reproductions pin this profile so the calibrated
    /// Figure 2–4 bands keep matching the paper.
    pub const fn paper() -> FuseConfig {
        FuseConfig {
            flags: InitFlags::paper_legacy(),
            ..FuseConfig::optimized()
        }
    }

    /// The unoptimized baseline of §5.2.3: no caches, no batching, no
    /// splice, single-threaded.
    pub const fn unoptimized() -> FuseConfig {
        FuseConfig {
            flags: InitFlags::none(),
            workers: 1,
            max_read: 128 * 1024,
            entry_cache_cap: 65_536,
            attr_cache_cap: 65_536,
            forget_batch: 64,
            meta_pipeline: 1,
            ring_depth: 1,
            ring_batch: 1,
        }
    }

    /// Returns a copy with one field replaced (ablation helper).
    #[must_use]
    pub const fn with_flags(mut self, flags: InitFlags) -> FuseConfig {
        self.flags = flags;
        self
    }

    /// Returns a copy with a different worker count.
    #[must_use]
    pub const fn with_workers(mut self, workers: usize) -> FuseConfig {
        self.workers = workers;
        self
    }

    /// Returns a copy with different ring batching knobs.
    #[must_use]
    pub const fn with_ring(mut self, depth: usize, batch: usize) -> FuseConfig {
        self.ring_depth = depth;
        self.ring_batch = batch;
        self
    }
}

impl Default for FuseConfig {
    fn default() -> FuseConfig {
        FuseConfig::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let o = FuseConfig::optimized();
        assert!(o.flags.writeback_cache);
        assert!(o.flags.splice_write, "shipping default splices writes");
        assert_eq!(o.workers, 4);
        let u = FuseConfig::unoptimized();
        assert!(!u.flags.writeback_cache);
        assert_eq!(u.workers, 1);
        let p = FuseConfig::paper();
        assert!(
            !p.flags.splice_write,
            "paper profile keeps splice-write off"
        );
        assert!(!p.flags.ring, "paper profile keeps the ring transport off");
        assert_eq!(p.workers, o.workers);
        assert!(o.flags.ring, "shipping default negotiates the ring");
        assert_eq!(o.ring_depth, 64);
        assert_eq!(o.ring_batch, 8);
    }

    #[test]
    fn ablation_helpers() {
        let c = FuseConfig::optimized().with_workers(16);
        assert_eq!(c.workers, 16);
        let mut f = InitFlags::cntr_default();
        f.keep_cache = false;
        let c = FuseConfig::optimized().with_flags(f);
        assert!(!c.flags.keep_cache);
        assert!(c.flags.writeback_cache);
        let c = FuseConfig::optimized().with_ring(128, 16);
        assert_eq!((c.ring_depth, c.ring_batch), (128, 16));
    }
}
