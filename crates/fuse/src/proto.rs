//! The FUSE wire protocol (request/reply model).
//!
//! Opcode numbers match `include/uapi/linux/fuse.h` so traces line up with
//! real FUSE debugging output. Payloads use [`bytes::Bytes`] so the splice
//! paths can hand buffers around without copying — mirroring what
//! `splice(2)` achieves on the real `/dev/fuse`.

use bytes::Bytes;
use cntr_types::{
    Dirent, Errno, FileType, Ino, Mode, OpenFlags, RenameFlags, SetAttr, Stat, Statfs,
};

/// Size of a FUSE request/reply header (`fuse_in_header` is 40 bytes;
/// we charge a round 80 for header plus typical op body).
pub const HEADER_BYTES: usize = 80;

/// FUSE operation codes (values from the Linux uapi).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Opcode {
    /// `FUSE_LOOKUP`
    Lookup = 1,
    /// `FUSE_FORGET`
    Forget = 2,
    /// `FUSE_GETATTR`
    Getattr = 3,
    /// `FUSE_SETATTR`
    Setattr = 4,
    /// `FUSE_READLINK`
    Readlink = 5,
    /// `FUSE_SYMLINK`
    Symlink = 6,
    /// `FUSE_MKNOD`
    Mknod = 8,
    /// `FUSE_MKDIR`
    Mkdir = 9,
    /// `FUSE_UNLINK`
    Unlink = 10,
    /// `FUSE_RMDIR`
    Rmdir = 11,
    /// `FUSE_RENAME`
    Rename = 12,
    /// `FUSE_LINK`
    Link = 13,
    /// `FUSE_OPEN`
    Open = 14,
    /// `FUSE_READ`
    Read = 15,
    /// `FUSE_WRITE`
    Write = 16,
    /// `FUSE_STATFS`
    Statfs = 17,
    /// `FUSE_RELEASE`
    Release = 18,
    /// `FUSE_FSYNC`
    Fsync = 20,
    /// `FUSE_SETXATTR`
    Setxattr = 21,
    /// `FUSE_GETXATTR`
    Getxattr = 22,
    /// `FUSE_LISTXATTR`
    Listxattr = 23,
    /// `FUSE_REMOVEXATTR`
    Removexattr = 24,
    /// `FUSE_FLUSH`
    Flush = 25,
    /// `FUSE_INIT`
    Init = 26,
    /// `FUSE_READDIR`
    Readdir = 28,
    /// `FUSE_ACCESS`
    Access = 34,
    /// `FUSE_CREATE`
    Create = 35,
    /// `FUSE_DESTROY`
    Destroy = 38,
    /// `FUSE_BATCH_FORGET`
    BatchForget = 42,
    /// `FUSE_FALLOCATE`
    Fallocate = 43,
}

impl Opcode {
    /// Kebab-cased opcode name, used to build the per-opcode obs metric
    /// family (`fuse.op.<name>.count` / `fuse.op.<name>.latency-ns`).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Lookup => "lookup",
            Opcode::Forget => "forget",
            Opcode::Getattr => "getattr",
            Opcode::Setattr => "setattr",
            Opcode::Readlink => "readlink",
            Opcode::Symlink => "symlink",
            Opcode::Mknod => "mknod",
            Opcode::Mkdir => "mkdir",
            Opcode::Unlink => "unlink",
            Opcode::Rmdir => "rmdir",
            Opcode::Rename => "rename",
            Opcode::Link => "link",
            Opcode::Open => "open",
            Opcode::Read => "read",
            Opcode::Write => "write",
            Opcode::Statfs => "statfs",
            Opcode::Release => "release",
            Opcode::Fsync => "fsync",
            Opcode::Setxattr => "setxattr",
            Opcode::Getxattr => "getxattr",
            Opcode::Listxattr => "listxattr",
            Opcode::Removexattr => "removexattr",
            Opcode::Flush => "flush",
            Opcode::Init => "init",
            Opcode::Readdir => "readdir",
            Opcode::Access => "access",
            Opcode::Create => "create",
            Opcode::Destroy => "destroy",
            Opcode::BatchForget => "batch-forget",
            Opcode::Fallocate => "fallocate",
        }
    }
}

/// INIT negotiation flags — each one is a paper §3.3 optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitFlags {
    /// `FUSE_WRITEBACK_CACHE`: buffer writes dirty in the page cache.
    pub writeback_cache: bool,
    /// `FOPEN_KEEP_CACHE` on opens: keep cached pages across `open()`.
    pub keep_cache: bool,
    /// `FUSE_PARALLEL_DIROPS`: concurrent lookups/readdirs in one directory.
    pub parallel_dirops: bool,
    /// `FUSE_ASYNC_READ`: batch concurrent read requests (large readahead).
    pub async_read: bool,
    /// `FUSE_SPLICE_READ` (+`MOVE`): zero-copy read replies.
    pub splice_read: bool,
    /// Splice writes. The paper's CNTR shipped with these *disabled*: every
    /// spliced request paid an extra context switch to peek the header
    /// (§3.3 "Splicing"), and writes were small enough that the copy was
    /// cheaper than the peek. With batched write-back, WRITE requests are
    /// few and large, so the peek amortizes and the payload moves by page
    /// remap — the shipping default is now **on** (see
    /// [`InitFlags::cntr_default`]); [`InitFlags::paper_legacy`] keeps the
    /// paper's original profile selectable.
    pub splice_write: bool,
    /// `FUSE_BATCH_FORGET` support.
    pub batch_forget: bool,
    /// FUSE-over-io_uring style shared submission/completion rings
    /// (`FUSE_IO_URING`): the client batches submissions and a worker reaps
    /// many completions per wakeup instead of paying one wakeup per
    /// request. Post-dates the paper, so [`InitFlags::paper_legacy`] keeps
    /// it off — same pattern as splice-write.
    pub ring: bool,
}

impl InitFlags {
    /// The shipping defaults: everything on, **including splice-write**.
    ///
    /// The paper disabled splice-write because the per-request header peek
    /// cost a context switch while writes were page-sized; now that
    /// write-back batching coalesces dirty runs into few large WRITE
    /// requests and the payload crosses the boundary as a retained
    /// [`bytes::Bytes`] (no copy), the peek amortizes away and splice-write
    /// wins. The paper's original profile is [`InitFlags::paper_legacy`].
    pub const fn cntr_default() -> InitFlags {
        InitFlags {
            writeback_cache: true,
            keep_cache: true,
            parallel_dirops: true,
            async_read: true,
            splice_read: true,
            splice_write: true,
            batch_forget: true,
            ring: true,
        }
    }

    /// CNTR's shipping defaults *as published* (§3.3): everything on except
    /// splice-write and the (post-paper) ring transport bit. The
    /// paper-figure reproductions (`cntr-phoronix`) pin this profile so
    /// Figures 2–4 keep the published calibration.
    pub const fn paper_legacy() -> InitFlags {
        InitFlags {
            writeback_cache: true,
            keep_cache: true,
            parallel_dirops: true,
            async_read: true,
            splice_read: true,
            splice_write: false,
            batch_forget: true,
            ring: false,
        }
    }

    /// Everything off — the unoptimized baseline of §5.2.3.
    pub const fn none() -> InitFlags {
        InitFlags {
            writeback_cache: false,
            keep_cache: false,
            parallel_dirops: false,
            async_read: false,
            splice_read: false,
            splice_write: false,
            batch_forget: false,
            ring: false,
        }
    }

    /// Everything on (what a server may advertise as supported).
    pub const fn all() -> InitFlags {
        InitFlags {
            writeback_cache: true,
            keep_cache: true,
            parallel_dirops: true,
            async_read: true,
            splice_read: true,
            splice_write: true,
            batch_forget: true,
            ring: true,
        }
    }

    /// Flag-wise intersection — INIT negotiation.
    #[must_use]
    pub const fn intersect(self, other: InitFlags) -> InitFlags {
        InitFlags {
            writeback_cache: self.writeback_cache && other.writeback_cache,
            keep_cache: self.keep_cache && other.keep_cache,
            parallel_dirops: self.parallel_dirops && other.parallel_dirops,
            async_read: self.async_read && other.async_read,
            splice_read: self.splice_read && other.splice_read,
            splice_write: self.splice_write && other.splice_write,
            batch_forget: self.batch_forget && other.batch_forget,
            ring: self.ring && other.ring,
        }
    }
}

/// The identity a request runs as (`fuse_in_header.{uid,gid,pid}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestCtx {
    /// Caller uid.
    pub uid: u32,
    /// Caller gid.
    pub gid: u32,
    /// Caller pid.
    pub pid: u32,
}

/// A FUSE request, as read from `/dev/fuse`.
#[derive(Debug, Clone)]
pub enum Request {
    /// Protocol negotiation.
    Init {
        /// Flags the kernel wants.
        wanted: InitFlags,
    },
    /// Resolve `name` under `parent`.
    Lookup {
        /// Parent inode.
        parent: Ino,
        /// Child name.
        name: String,
        /// Caller identity.
        ctx: RequestCtx,
    },
    /// Drop `nlookup` references to `ino`.
    Forget {
        /// Inode.
        ino: Ino,
        /// Reference count to drop.
        nlookup: u64,
    },
    /// Batched forget.
    BatchForget {
        /// `(ino, nlookup)` pairs.
        items: Vec<(Ino, u64)>,
    },
    /// Read attributes.
    Getattr {
        /// Inode.
        ino: Ino,
    },
    /// Modify attributes.
    Setattr {
        /// Inode.
        ino: Ino,
        /// The change-set.
        attr: SetAttr,
        /// Caller identity.
        ctx: RequestCtx,
    },
    /// Read a symlink target.
    Readlink {
        /// Inode.
        ino: Ino,
    },
    /// Create a symlink.
    Symlink {
        /// Parent inode.
        parent: Ino,
        /// Link name.
        name: String,
        /// Target path.
        target: String,
        /// Caller identity.
        ctx: RequestCtx,
    },
    /// Create a node.
    Mknod {
        /// Parent inode.
        parent: Ino,
        /// Name.
        name: String,
        /// File type.
        ftype: FileType,
        /// Permissions.
        mode: Mode,
        /// Device number.
        rdev: u64,
        /// Caller identity.
        ctx: RequestCtx,
    },
    /// Create a directory.
    Mkdir {
        /// Parent inode.
        parent: Ino,
        /// Name.
        name: String,
        /// Permissions.
        mode: Mode,
        /// Caller identity.
        ctx: RequestCtx,
    },
    /// Remove a file.
    Unlink {
        /// Parent inode.
        parent: Ino,
        /// Name.
        name: String,
    },
    /// Remove a directory.
    Rmdir {
        /// Parent inode.
        parent: Ino,
        /// Name.
        name: String,
    },
    /// Rename.
    Rename {
        /// Source parent.
        parent: Ino,
        /// Source name.
        name: String,
        /// Destination parent.
        newparent: Ino,
        /// Destination name.
        newname: String,
        /// `renameat2` flags.
        flags: RenameFlags,
    },
    /// Hard link.
    Link {
        /// Source inode.
        ino: Ino,
        /// Destination parent.
        newparent: Ino,
        /// Destination name.
        newname: String,
    },
    /// Open a file.
    Open {
        /// Inode.
        ino: Ino,
        /// Open flags.
        flags: OpenFlags,
    },
    /// Read data.
    Read {
        /// Inode.
        ino: Ino,
        /// Server file handle.
        fh: u64,
        /// Byte offset.
        offset: u64,
        /// Bytes wanted.
        size: u32,
    },
    /// Write data.
    Write {
        /// Inode.
        ino: Ino,
        /// Server file handle.
        fh: u64,
        /// Byte offset.
        offset: u64,
        /// Payload.
        data: Bytes,
    },
    /// Filesystem statistics.
    Statfs,
    /// Close a handle.
    Release {
        /// Inode.
        ino: Ino,
        /// Server file handle.
        fh: u64,
    },
    /// Sync file data.
    Fsync {
        /// Inode.
        ino: Ino,
        /// Server file handle.
        fh: u64,
        /// Data-only sync.
        datasync: bool,
    },
    /// List a directory.
    Readdir {
        /// Inode.
        ino: Ino,
    },
    /// Read an extended attribute.
    Getxattr {
        /// Inode.
        ino: Ino,
        /// Attribute name.
        name: String,
    },
    /// Set an extended attribute.
    Setxattr {
        /// Inode.
        ino: Ino,
        /// Attribute name.
        name: String,
        /// Value.
        value: Vec<u8>,
        /// Flags.
        flags: cntr_fs::XattrFlags,
    },
    /// List extended attributes.
    Listxattr {
        /// Inode.
        ino: Ino,
    },
    /// Remove an extended attribute.
    Removexattr {
        /// Inode.
        ino: Ino,
        /// Attribute name.
        name: String,
    },
    /// Permission probe.
    Access {
        /// Inode.
        ino: Ino,
        /// `rwx` mask.
        mask: u8,
        /// Caller identity.
        ctx: RequestCtx,
    },
    /// Atomic create+open.
    Create {
        /// Parent inode.
        parent: Ino,
        /// Name.
        name: String,
        /// Permissions.
        mode: Mode,
        /// Open flags.
        flags: OpenFlags,
        /// Caller identity.
        ctx: RequestCtx,
    },
    /// Space manipulation.
    Fallocate {
        /// Inode.
        ino: Ino,
        /// Server file handle.
        fh: u64,
        /// Offset.
        offset: u64,
        /// Length.
        len: u64,
        /// Mode.
        mode: cntr_fs::FallocateMode,
    },
    /// Flush on close.
    Flush {
        /// Inode.
        ino: Ino,
        /// Server file handle.
        fh: u64,
    },
    /// Unmount notification.
    Destroy,
}

impl Request {
    /// The opcode of this request.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Init { .. } => Opcode::Init,
            Request::Lookup { .. } => Opcode::Lookup,
            Request::Forget { .. } => Opcode::Forget,
            Request::BatchForget { .. } => Opcode::BatchForget,
            Request::Getattr { .. } => Opcode::Getattr,
            Request::Setattr { .. } => Opcode::Setattr,
            Request::Readlink { .. } => Opcode::Readlink,
            Request::Symlink { .. } => Opcode::Symlink,
            Request::Mknod { .. } => Opcode::Mknod,
            Request::Mkdir { .. } => Opcode::Mkdir,
            Request::Unlink { .. } => Opcode::Unlink,
            Request::Rmdir { .. } => Opcode::Rmdir,
            Request::Rename { .. } => Opcode::Rename,
            Request::Link { .. } => Opcode::Link,
            Request::Open { .. } => Opcode::Open,
            Request::Read { .. } => Opcode::Read,
            Request::Write { .. } => Opcode::Write,
            Request::Statfs => Opcode::Statfs,
            Request::Release { .. } => Opcode::Release,
            Request::Fsync { .. } => Opcode::Fsync,
            Request::Readdir { .. } => Opcode::Readdir,
            Request::Getxattr { .. } => Opcode::Getxattr,
            Request::Setxattr { .. } => Opcode::Setxattr,
            Request::Listxattr { .. } => Opcode::Listxattr,
            Request::Removexattr { .. } => Opcode::Removexattr,
            Request::Access { .. } => Opcode::Access,
            Request::Create { .. } => Opcode::Create,
            Request::Fallocate { .. } => Opcode::Fallocate,
            Request::Flush { .. } => Opcode::Flush,
            Request::Destroy => Opcode::Destroy,
        }
    }

    /// True for metadata operations (everything except READ/WRITE) — the
    /// class `FUSE_PARALLEL_DIROPS` pipelines.
    pub fn is_meta(&self) -> bool {
        !matches!(self, Request::Read { .. } | Request::Write { .. })
    }

    /// Approximate on-the-wire size of the request.
    pub fn wire_bytes(&self) -> usize {
        let payload = match self {
            Request::Lookup { name, .. }
            | Request::Unlink { name, .. }
            | Request::Rmdir { name, .. }
            | Request::Mkdir { name, .. } => name.len(),
            Request::Symlink { name, target, .. } => name.len() + target.len(),
            Request::Mknod { name, .. } | Request::Create { name, .. } => name.len(),
            Request::Rename { name, newname, .. } => name.len() + newname.len(),
            Request::Link { newname, .. } => newname.len(),
            Request::Write { data, .. } => data.len(),
            Request::Setxattr { name, value, .. } => name.len() + value.len(),
            Request::Getxattr { name, .. } | Request::Removexattr { name, .. } => name.len(),
            Request::BatchForget { items } => items.len() * 16,
            _ => 0,
        };
        HEADER_BYTES + payload
    }
}

/// A FUSE reply, as written back to `/dev/fuse`.
#[derive(Debug, Clone)]
pub enum Reply {
    /// Negotiated flags.
    Init {
        /// Flags granted by the server.
        granted: InitFlags,
    },
    /// Entry (lookup/mknod/mkdir/symlink/link): attributes of the node.
    Entry(Stat),
    /// Attributes.
    Attr(Stat),
    /// Symlink target.
    Target(String),
    /// Open succeeded.
    Opened {
        /// Server handle.
        fh: u64,
        /// Whether `FOPEN_KEEP_CACHE` was set on this open.
        keep_cache: bool,
    },
    /// Created and opened (CREATE).
    Created {
        /// Attributes.
        stat: Stat,
        /// Server handle.
        fh: u64,
    },
    /// Read data.
    Data(Bytes),
    /// Bytes written.
    Written(u32),
    /// Directory listing.
    Dirents(Vec<Dirent>),
    /// Filesystem statistics.
    Statfs(Statfs),
    /// Xattr value.
    Xattr(Vec<u8>),
    /// Xattr name list.
    XattrNames(Vec<String>),
    /// Generic success.
    Ok,
    /// Error.
    Err(Errno),
}

impl Reply {
    /// Approximate on-the-wire size of the reply.
    pub fn wire_bytes(&self) -> usize {
        let payload = match self {
            Reply::Data(b) => b.len(),
            Reply::Dirents(d) => d.iter().map(|e| 32 + e.name.len()).sum(),
            Reply::Xattr(v) => v.len(),
            Reply::XattrNames(n) => n.iter().map(|s| s.len() + 1).sum(),
            Reply::Target(t) => t.len(),
            _ => 0,
        };
        HEADER_BYTES + payload
    }

    /// Extracts an error, if this is one.
    pub fn as_err(&self) -> Option<Errno> {
        match self {
            Reply::Err(e) => Some(*e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_values_match_linux_uapi() {
        assert_eq!(Opcode::Lookup as u32, 1);
        assert_eq!(Opcode::Read as u32, 15);
        assert_eq!(Opcode::Write as u32, 16);
        assert_eq!(Opcode::Init as u32, 26);
        assert_eq!(Opcode::BatchForget as u32, 42);
    }

    #[test]
    fn init_intersection() {
        let got = InitFlags::cntr_default().intersect(InitFlags::none());
        assert_eq!(got, InitFlags::none());
        let got = InitFlags::cntr_default().intersect(InitFlags::all());
        assert_eq!(got, InitFlags::cntr_default());
        assert!(
            InitFlags::cntr_default().splice_write,
            "splice-write ships on now that batched write-back makes it a win"
        );
    }

    #[test]
    fn paper_legacy_profile_matches_published_defaults() {
        let legacy = InitFlags::paper_legacy();
        assert!(!legacy.splice_write, "the paper shipped splice-write off");
        assert!(!legacy.ring, "ring transport post-dates the paper");
        // Identical to the shipping default in every other flag.
        let mut modern = InitFlags::cntr_default();
        modern.splice_write = false;
        modern.ring = false;
        assert_eq!(legacy, modern);
    }

    #[test]
    fn meta_classification() {
        let r = Request::Lookup {
            parent: Ino::ROOT,
            name: "x".into(),
            ctx: RequestCtx::default(),
        };
        assert!(r.is_meta());
        let w = Request::Write {
            ino: Ino(2),
            fh: 1,
            offset: 0,
            data: Bytes::from_static(b"abc"),
        };
        assert!(!w.is_meta());
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let w = Request::Write {
            ino: Ino(2),
            fh: 1,
            offset: 0,
            data: Bytes::from(vec![0u8; 4096]),
        };
        assert_eq!(w.wire_bytes(), HEADER_BYTES + 4096);
        let d = Reply::Data(Bytes::from(vec![0u8; 100]));
        assert_eq!(d.wire_bytes(), HEADER_BYTES + 100);
    }
}
