//! The kernel half of FUSE: a [`Filesystem`] that speaks the protocol.
//!
//! Every VFS operation on a CntrFS mount lands here and becomes (or is
//! absorbed before becoming) a FUSE request. This is where the paper's
//! performance story lives:
//!
//! * **entry/attr caches** absorb repeat lookups (their *absence* on cold
//!   trees is why compilebench-read is 13.3× slower on CntrFS, §5.2.2);
//! * **readahead** (`FUSE_ASYNC_READ`, 128 KiB requests) batches sequential
//!   reads;
//! * **forget batching** (`FUSE_BATCH_FORGET`) folds many forgets into one
//!   request;
//! * **metadata pipelining** (`FUSE_PARALLEL_DIROPS`) overlaps lookup round
//!   trips (Figure 3c);
//! * **splice** replaces per-byte copies with page remaps (Figure 3d); the
//!   splice-*write* variant taxes every request with an extra context
//!   switch, which is why CNTR ships with it disabled (§3.3);
//! * **worker threads** add per-request synchronization overhead
//!   (Figure 4).
//!
//! The page cache itself lives in the simulated kernel (`cntr-kernel`); the
//! negotiated `writeback_cache`/`keep_cache` flags are exported via
//! [`FuseClientFs::effective_flags`] for the mount to configure.

use crate::config::FuseConfig;
use crate::conn::{ConnSnapshot, Transport};
use crate::proto::{InitFlags, Reply, Request, RequestCtx};
use bytes::Bytes;
use cntr_fs::{FallocateMode, Fh, Filesystem, FsContext, FsFeatures, XattrFlags};
use cntr_types::{
    CostModel, DevId, Dirent, Errno, FileType, Ino, Mode, OpenFlags, RenameFlags, SetAttr,
    SimClock, Stat, Statfs, SysResult,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CachedEntry {
    ino: Ino,
    tick: u64,
}

struct ReadAhead {
    ino: Ino,
    start: u64,
    /// The retained reply buffer. With `splice_read` this is the *same
    /// allocation* the server handed over — the readahead window costs no
    /// copy to keep.
    data: Bytes,
}

#[derive(Default)]
struct ClientState {
    entry_cache: HashMap<(Ino, String), CachedEntry>,
    attr_cache: HashMap<Ino, Stat>,
    nlookup: HashMap<Ino, u64>,
    forget_queue: Vec<(Ino, u64)>,
    readahead: HashMap<u64, ReadAhead>,
    tick: u64,
}

/// Cache behaviour counters of one client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Entry-cache hits.
    pub entry_hits: u64,
    /// Entry-cache misses (→ LOOKUP request).
    pub entry_misses: u64,
    /// Attr-cache hits.
    pub attr_hits: u64,
    /// Attr-cache misses (→ GETATTR request).
    pub attr_misses: u64,
    /// Reads served from the readahead buffer.
    pub readahead_hits: u64,
    /// READ requests issued.
    pub read_requests: u64,
}

/// The FUSE mount as seen by the simulated kernel.
pub struct FuseClientFs {
    dev: DevId,
    clock: SimClock,
    cost: CostModel,
    config: FuseConfig,
    transport: Arc<dyn Transport>,
    state: Mutex<ClientState>,
    entry_hits: AtomicU64,
    entry_misses: AtomicU64,
    attr_hits: AtomicU64,
    attr_misses: AtomicU64,
    readahead_hits: AtomicU64,
    read_requests: AtomicU64,
}

impl FuseClientFs {
    /// Mounts: performs INIT negotiation and returns the client.
    pub fn mount(
        dev: DevId,
        clock: SimClock,
        cost: CostModel,
        config: FuseConfig,
        transport: Arc<dyn Transport>,
    ) -> SysResult<Arc<FuseClientFs>> {
        let reply = transport.call(Request::Init {
            wanted: config.flags,
        });
        let granted = match reply {
            Reply::Init { granted } => granted,
            Reply::Err(e) => return Err(e),
            _ => return Err(Errno::EPROTO),
        };
        let mut config = config;
        config.flags = config.flags.intersect(granted);
        Ok(Arc::new(FuseClientFs {
            dev,
            clock,
            cost,
            config,
            transport,
            state: Mutex::new_class("fuse.client_state", ClientState::default()),
            entry_hits: AtomicU64::new(0),
            entry_misses: AtomicU64::new(0),
            attr_hits: AtomicU64::new(0),
            attr_misses: AtomicU64::new(0),
            readahead_hits: AtomicU64::new(0),
            read_requests: AtomicU64::new(0),
        }))
    }

    /// The flags that survived INIT negotiation.
    pub fn effective_flags(&self) -> InitFlags {
        self.config.flags
    }

    /// The mount configuration.
    pub fn config(&self) -> &FuseConfig {
        &self.config
    }

    /// Client-side cache counters.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            entry_hits: self.entry_hits.load(Ordering::Relaxed),
            entry_misses: self.entry_misses.load(Ordering::Relaxed),
            attr_hits: self.attr_hits.load(Ordering::Relaxed),
            attr_misses: self.attr_misses.load(Ordering::Relaxed),
            readahead_hits: self.readahead_hits.load(Ordering::Relaxed),
            read_requests: self.read_requests.load(Ordering::Relaxed),
        }
    }

    /// Transport-level request counters.
    pub fn conn_stats(&self) -> ConnSnapshot {
        self.transport.stats()
    }

    /// Simulates the server dying (used by failure-injection tests).
    pub fn kill_connection(&self) {
        self.transport.shutdown();
    }

    /// Drops the entry/attr caches and readahead buffers (cold-cache
    /// benchmark phases). Queued forgets are flushed first.
    pub fn drop_caches(&self) {
        self.flush_forgets();
        let mut st = self.state.lock();
        st.entry_cache.clear();
        st.attr_cache.clear();
        st.readahead.clear();
    }

    /// Charges the protocol cost of one round trip.
    fn charge(&self, req: &Request, reply: &Reply) {
        let f = &self.config.flags;
        let depth = if req.is_meta() && f.parallel_dirops {
            self.config.meta_pipeline.max(1) as u64
        } else {
            1
        };
        let mut ns = self.cost.fuse_round_trip() / depth;
        // Splice-write peeks the request header before deciding whether the
        // payload can stay in the kernel: one extra context switch per
        // *spliced* request (§3.3 — the reason the paper shipped with it
        // off). Batched write-back makes WRITE requests few and large, so
        // the peek amortizes against the page-remap payload cost below.
        if f.splice_write && matches!(req, Request::Write { .. }) {
            ns += self.cost.ctx_switch_ns;
        }
        // Worker synchronization overhead grows with the thread count. With
        // the ring negotiated, the doorbell amortizes that per-request
        // wakeup across the submission batch (the point of
        // FUSE-over-io_uring), so each request pays only its share.
        let workers = self.config.workers.max(1) as u64;
        if workers > 1 {
            let sync = self.cost.mt_sync_ns * workers.ilog2() as u64;
            ns += if f.ring {
                sync / self.config.ring_batch.max(1) as u64
            } else {
                sync
            };
        }
        let req_bytes = req.wire_bytes() as u64;
        ns += if matches!(req, Request::Write { .. }) && f.splice_write {
            self.cost.splice(req_bytes)
        } else {
            self.cost.copy(req_bytes)
        };
        let reply_bytes = reply.wire_bytes() as u64;
        ns += if matches!(reply, Reply::Data(_)) && f.splice_read {
            self.cost.splice(reply_bytes)
        } else {
            self.cost.copy(reply_bytes)
        };
        self.clock.advance(ns);
    }

    fn call(&self, req: Request) -> SysResult<Reply> {
        // Each request gets a trace id; the transport propagates it to its
        // workers so handler/storage spans attribute to this request. The
        // scope nests: a re-entrant request (writeback from inside a
        // handler) gets its own id and restores the outer one on return.
        let trace = obs::trace::next_trace_id();
        let _scope = obs::trace::TraceScope::enter(trace);
        let reply = {
            let _span = obs::trace::Span::start_for(trace, "client");
            self.transport.call(req.clone())
        };
        self.charge(&req, &reply);
        match reply {
            Reply::Err(e) => Err(e),
            other => Ok(other),
        }
    }

    fn remember(&self, parent: Ino, name: &str, stat: Stat) {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        st.entry_cache.insert(
            (parent, name.to_string()),
            CachedEntry {
                ino: stat.ino,
                tick,
            },
        );
        st.attr_cache.insert(stat.ino, stat);
        st.attr_cache.remove(&parent);
        *st.nlookup.entry(stat.ino).or_insert(0) += 1;
        let over = st.entry_cache.len() > self.config.entry_cache_cap;
        drop(st);
        if over {
            self.evict_entries();
        }
    }

    /// Evicts the oldest eighth of the entry cache, queueing forgets.
    fn evict_entries(&self) {
        let mut st = self.state.lock();
        let mut entries: Vec<(u64, (Ino, String))> = st
            .entry_cache
            .iter()
            .map(|(k, v)| (v.tick, k.clone()))
            .collect();
        entries.sort_unstable_by_key(|(t, _)| *t);
        let evict = entries.len() / 8 + 1;
        for (_, key) in entries.into_iter().take(evict) {
            if let Some(e) = st.entry_cache.remove(&key) {
                let remaining = {
                    let c = st.nlookup.entry(e.ino).or_insert(1);
                    *c = c.saturating_sub(1);
                    *c
                };
                st.forget_queue.push((e.ino, 1));
                if remaining == 0 {
                    st.attr_cache.remove(&e.ino);
                }
            }
        }
        let flush = st.forget_queue.len() >= self.config.forget_batch;
        drop(st);
        if flush {
            self.flush_forgets();
        }
    }

    /// Sends the queued forgets — one BATCH_FORGET, or N FORGETs when the
    /// server did not negotiate batching.
    pub fn flush_forgets(&self) {
        let items = {
            let mut st = self.state.lock();
            std::mem::take(&mut st.forget_queue)
        };
        if items.is_empty() {
            return;
        }
        if self.config.flags.batch_forget {
            let _ = self.call(Request::BatchForget { items });
        } else {
            for (ino, nlookup) in items {
                let _ = self.call(Request::Forget { ino, nlookup });
            }
        }
    }

    fn invalidate_entry(&self, parent: Ino, name: &str) {
        let mut st = self.state.lock();
        if let Some(e) = st.entry_cache.remove(&(parent, name.to_string())) {
            st.attr_cache.remove(&e.ino);
        }
        st.attr_cache.remove(&parent);
    }

    /// Drops one inode's cached attributes (its nlink/size/blocks changed
    /// server-side in a way the client cannot compute).
    fn invalidate_attr(&self, ino: Ino) {
        self.state.lock().attr_cache.remove(&ino);
    }

    fn drop_readahead_for(&self, ino: Ino) {
        let mut st = self.state.lock();
        st.readahead.retain(|_, ra| ra.ino != ino);
    }

    fn update_attr(&self, stat: Stat) {
        self.state.lock().attr_cache.insert(stat.ino, stat);
    }
}

fn req_ctx(ctx: &FsContext) -> RequestCtx {
    RequestCtx {
        uid: ctx.uid.raw(),
        gid: ctx.gid.raw(),
        pid: 0,
    }
}

impl Filesystem for FuseClientFs {
    fn fs_id(&self) -> DevId {
        self.dev
    }

    fn fs_type(&self) -> &'static str {
        "fuse.cntrfs"
    }

    fn features(&self) -> FsFeatures {
        // The four xfstests failures (§5.1) plus the uncached
        // security.capability xattr (§5.2.2 Apache) in feature-flag form.
        FsFeatures {
            direct_io: false,
            exportable_handles: false,
            enforces_caller_fsize: false,
            native_setgid_clearing: false,
            block_backed: false,
            reflink: false,
            xattr_cached: false,
        }
    }

    fn lookup(&self, parent: Ino, name: &str) -> SysResult<Stat> {
        {
            let mut st = self.state.lock();
            st.tick += 1;
            let tick = st.tick;
            if let Some(e) = st.entry_cache.get_mut(&(parent, name.to_string())) {
                e.tick = tick;
                let ino = e.ino;
                if let Some(stat) = st.attr_cache.get(&ino) {
                    let stat = *stat;
                    drop(st);
                    self.entry_hits.fetch_add(1, Ordering::Relaxed);
                    self.clock.advance(self.cost.dcache_hit_ns);
                    return Ok(stat);
                }
            }
        }
        self.entry_misses.fetch_add(1, Ordering::Relaxed);
        let reply = self.call(Request::Lookup {
            parent,
            name: name.to_string(),
            ctx: RequestCtx::default(),
        })?;
        match reply {
            Reply::Entry(stat) => {
                self.remember(parent, name, stat);
                Ok(stat)
            }
            _ => Err(Errno::EPROTO),
        }
    }

    fn getattr(&self, ino: Ino) -> SysResult<Stat> {
        if let Some(stat) = self.state.lock().attr_cache.get(&ino).copied() {
            self.attr_hits.fetch_add(1, Ordering::Relaxed);
            self.clock.advance(self.cost.dcache_hit_ns);
            return Ok(stat);
        }
        self.attr_misses.fetch_add(1, Ordering::Relaxed);
        match self.call(Request::Getattr { ino })? {
            Reply::Attr(stat) => {
                self.update_attr(stat);
                Ok(stat)
            }
            _ => Err(Errno::EPROTO),
        }
    }

    fn setattr(&self, ino: Ino, attr: &SetAttr, ctx: &FsContext) -> SysResult<Stat> {
        let reply = self.call(Request::Setattr {
            ino,
            attr: *attr,
            ctx: req_ctx(ctx),
        })?;
        match reply {
            Reply::Attr(stat) => {
                self.update_attr(stat);
                if attr.size.is_some() {
                    self.drop_readahead_for(ino);
                }
                Ok(stat)
            }
            _ => Err(Errno::EPROTO),
        }
    }

    fn mknod(
        &self,
        parent: Ino,
        name: &str,
        ftype: FileType,
        mode: Mode,
        rdev: u64,
        ctx: &FsContext,
    ) -> SysResult<Stat> {
        let reply = self.call(Request::Mknod {
            parent,
            name: name.to_string(),
            ftype,
            mode,
            rdev,
            ctx: req_ctx(ctx),
        })?;
        match reply {
            Reply::Entry(stat) => {
                self.remember(parent, name, stat);
                Ok(stat)
            }
            _ => Err(Errno::EPROTO),
        }
    }

    fn mkdir(&self, parent: Ino, name: &str, mode: Mode, ctx: &FsContext) -> SysResult<Stat> {
        let reply = self.call(Request::Mkdir {
            parent,
            name: name.to_string(),
            mode,
            ctx: req_ctx(ctx),
        })?;
        match reply {
            Reply::Entry(stat) => {
                self.remember(parent, name, stat);
                Ok(stat)
            }
            _ => Err(Errno::EPROTO),
        }
    }

    fn unlink(&self, parent: Ino, name: &str) -> SysResult<()> {
        self.call(Request::Unlink {
            parent,
            name: name.to_string(),
        })?;
        self.invalidate_entry(parent, name);
        Ok(())
    }

    fn rmdir(&self, parent: Ino, name: &str) -> SysResult<()> {
        self.call(Request::Rmdir {
            parent,
            name: name.to_string(),
        })?;
        self.invalidate_entry(parent, name);
        Ok(())
    }

    fn symlink(&self, parent: Ino, name: &str, target: &str, ctx: &FsContext) -> SysResult<Stat> {
        let reply = self.call(Request::Symlink {
            parent,
            name: name.to_string(),
            target: target.to_string(),
            ctx: req_ctx(ctx),
        })?;
        match reply {
            Reply::Entry(stat) => {
                self.remember(parent, name, stat);
                Ok(stat)
            }
            _ => Err(Errno::EPROTO),
        }
    }

    fn readlink(&self, ino: Ino) -> SysResult<String> {
        match self.call(Request::Readlink { ino })? {
            Reply::Target(t) => Ok(t),
            _ => Err(Errno::EPROTO),
        }
    }

    fn link(&self, ino: Ino, newparent: Ino, newname: &str) -> SysResult<Stat> {
        let reply = self.call(Request::Link {
            ino,
            newparent,
            newname: newname.to_string(),
        })?;
        match reply {
            Reply::Entry(stat) => {
                self.remember(newparent, newname, stat);
                Ok(stat)
            }
            _ => Err(Errno::EPROTO),
        }
    }

    fn rename(
        &self,
        parent: Ino,
        name: &str,
        newparent: Ino,
        newname: &str,
        flags: RenameFlags,
    ) -> SysResult<()> {
        self.call(Request::Rename {
            parent,
            name: name.to_string(),
            newparent,
            newname: newname.to_string(),
            flags,
        })?;
        self.invalidate_entry(parent, name);
        self.invalidate_entry(newparent, newname);
        Ok(())
    }

    fn open(&self, ino: Ino, flags: OpenFlags) -> SysResult<Fh> {
        if flags.contains(OpenFlags::DIRECT) {
            // Direct I/O and mmap are mutually exclusive in FUSE; CNTR
            // needs mmap to execute binaries (paper §5.1, test #391).
            return Err(Errno::EINVAL);
        }
        match self.call(Request::Open { ino, flags })? {
            Reply::Opened { fh, .. } => {
                let mut st = self.state.lock();
                st.readahead.insert(
                    fh,
                    ReadAhead {
                        ino,
                        start: 0,
                        data: Bytes::new(),
                    },
                );
                if flags.contains(OpenFlags::TRUNC) && flags.mode.writable() {
                    if let Some(stat) = st.attr_cache.get_mut(&ino) {
                        stat.size = 0;
                    }
                }
                Ok(Fh(fh))
            }
            _ => Err(Errno::EPROTO),
        }
    }

    fn release(&self, ino: Ino, fh: Fh) -> SysResult<()> {
        self.state.lock().readahead.remove(&fh.0);
        self.call(Request::Release { ino, fh: fh.0 })?;
        Ok(())
    }

    fn read(&self, ino: Ino, fh: Fh, offset: u64, buf: &mut [u8]) -> SysResult<usize> {
        // `read(2)` semantics: the final hop into the caller's buffer is
        // always a copy (copy_to_user); everything before it is the shared
        // splice path below.
        let data = self.read_bytes(ino, fh, offset, buf.len())?;
        buf[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }

    fn read_bytes(&self, ino: Ino, fh: Fh, offset: u64, len: usize) -> SysResult<Bytes> {
        if len == 0 {
            return Ok(Bytes::new());
        }
        // Readahead-buffer hit: no round trip. The virtual clock charges the
        // classic buffer-copy cost (calibration-stable); at the pointer
        // level the returned buffer is a slice of the retained reply.
        {
            let st = self.state.lock();
            if let Some(ra) = st.readahead.get(&fh.0) {
                if offset >= ra.start && offset < ra.start + ra.data.len() as u64 {
                    let begin = (offset - ra.start) as usize;
                    let n = (ra.data.len() - begin).min(len);
                    let out = ra.data.slice(begin..begin + n);
                    drop(st);
                    self.readahead_hits.fetch_add(1, Ordering::Relaxed);
                    self.clock.advance(self.cost.copy(n as u64));
                    return Ok(out);
                }
            }
        }
        // Issue a READ; with async_read the request is a full readahead
        // window regardless of how little the caller wants.
        let req_size = if self.config.flags.async_read {
            self.config.max_read.max(len)
        } else {
            len
        };
        self.read_requests.fetch_add(1, Ordering::Relaxed);
        let reply = self.call(Request::Read {
            ino,
            fh: fh.0,
            offset,
            size: req_size as u32,
        })?;
        let data = match reply {
            Reply::Data(d) => d,
            _ => return Err(Errno::EPROTO),
        };
        // splice_read: the reply pages are remapped — the kernel (and its
        // readahead window) keeps the very allocation the server produced.
        // Without it the payload is memcpy'd through /dev/fuse exactly once
        // (the copy the virtual clock already priced in `charge`), and the
        // kernel retains — and serves window hits from — its own copy,
        // never the server's buffer.
        let data = if self.config.flags.splice_read {
            data
        } else {
            Bytes::copy_from_slice(&data)
        };
        let n = data.len().min(len);
        let out = data.slice(..n);
        if self.config.flags.async_read {
            let mut st = self.state.lock();
            st.readahead.insert(
                fh.0,
                ReadAhead {
                    ino,
                    start: offset,
                    data,
                },
            );
        }
        Ok(out)
    }

    fn write(&self, ino: Ino, fh: Fh, offset: u64, data: &[u8]) -> SysResult<usize> {
        // The copy_from_user: the kernel must own the payload before it can
        // queue the request. In-kernel writers (page-cache write-back) call
        // `write_bytes` directly and skip it.
        self.write_bytes(ino, fh, offset, Bytes::copy_from_slice(data))
    }

    fn write_bytes(&self, ino: Ino, fh: Fh, offset: u64, data: Bytes) -> SysResult<usize> {
        // splice_write: the owned buffer crosses the boundary by reference
        // (page remap). Without it the payload is memcpy'd through
        // /dev/fuse — the copy `charge` prices for non-spliced writes.
        let payload = if self.config.flags.splice_write {
            data
        } else {
            Bytes::copy_from_slice(&data)
        };
        let reply = self.call(Request::Write {
            ino,
            fh: fh.0,
            offset,
            data: payload,
        })?;
        let written = match reply {
            Reply::Written(n) => n as usize,
            _ => return Err(Errno::EPROTO),
        };
        {
            let mut st = self.state.lock();
            if let Some(stat) = st.attr_cache.get_mut(&ino) {
                stat.size = stat.size.max(offset + written as u64);
            }
            // The written range may overlap a readahead buffer: drop stale ones.
            st.readahead.retain(|_, ra| {
                ra.ino != ino
                    || offset >= ra.start + ra.data.len() as u64
                    || offset + written as u64 <= ra.start
            });
        }
        Ok(written)
    }

    fn fsync(&self, ino: Ino, fh: Fh, datasync: bool) -> SysResult<()> {
        self.call(Request::Fsync {
            ino,
            fh: fh.0,
            datasync,
        })?;
        self.invalidate_attr(ino);
        Ok(())
    }

    fn readdir(&self, ino: Ino) -> SysResult<Vec<Dirent>> {
        match self.call(Request::Readdir { ino })? {
            Reply::Dirents(d) => Ok(d),
            _ => Err(Errno::EPROTO),
        }
    }

    fn statfs(&self) -> SysResult<Statfs> {
        match self.call(Request::Statfs)? {
            Reply::Statfs(s) => Ok(s),
            _ => Err(Errno::EPROTO),
        }
    }

    fn getxattr(&self, ino: Ino, name: &str) -> SysResult<Vec<u8>> {
        // Never cached: the Apache overhead of Figure 2 (§5.2.2).
        match self.call(Request::Getxattr {
            ino,
            name: name.to_string(),
        })? {
            Reply::Xattr(v) => Ok(v),
            _ => Err(Errno::EPROTO),
        }
    }

    fn setxattr(&self, ino: Ino, name: &str, value: &[u8], flags: XattrFlags) -> SysResult<()> {
        self.call(Request::Setxattr {
            ino,
            name: name.to_string(),
            value: value.to_vec(),
            flags,
        })?;
        Ok(())
    }

    fn listxattr(&self, ino: Ino) -> SysResult<Vec<String>> {
        match self.call(Request::Listxattr { ino })? {
            Reply::XattrNames(n) => Ok(n),
            _ => Err(Errno::EPROTO),
        }
    }

    fn removexattr(&self, ino: Ino, name: &str) -> SysResult<()> {
        self.call(Request::Removexattr {
            ino,
            name: name.to_string(),
        })?;
        Ok(())
    }

    fn fallocate(
        &self,
        ino: Ino,
        fh: Fh,
        offset: u64,
        len: u64,
        mode: FallocateMode,
    ) -> SysResult<()> {
        self.call(Request::Fallocate {
            ino,
            fh: fh.0,
            offset,
            len,
            mode,
        })?;
        self.invalidate_attr(ino);
        Ok(())
    }

    fn forget(&self, ino: Ino, nlookup: u64) {
        let flush = {
            let mut st = self.state.lock();
            // A forgotten inode must vanish from the kernel-side caches too.
            st.attr_cache.remove(&ino);
            st.entry_cache.retain(|_, e| e.ino != ino);
            st.nlookup.remove(&ino);
            st.forget_queue.push((ino, nlookup));
            st.forget_queue.len() >= self.config.forget_batch
        };
        if flush {
            self.flush_forgets();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::InlineTransport;
    use crate::server::FsHandler;
    use cntr_fs::memfs::memfs;
    use cntr_types::Timespec;

    fn mounted(config: FuseConfig) -> (Arc<FuseClientFs>, SimClock) {
        let clock = SimClock::new();
        let backing = memfs(DevId(1), clock.clone());
        let transport = InlineTransport::new(FsHandler::new(backing));
        let client = FuseClientFs::mount(
            DevId(100),
            clock.clone(),
            CostModel::calibrated(),
            config,
            transport,
        )
        .expect("mount");
        (client, clock)
    }

    fn root_ctx() -> FsContext {
        FsContext::root()
    }

    #[test]
    fn basic_file_lifecycle_over_fuse() {
        let (fs, _) = mounted(FuseConfig::optimized());
        let st = fs
            .mknod(
                Ino::ROOT,
                "f",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &root_ctx(),
            )
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        fs.write(st.ino, fh, 0, b"over the wire").unwrap();
        let mut buf = [0u8; 32];
        let n = fs.read(st.ino, fh, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"over the wire");
        fs.release(st.ino, fh).unwrap();
        fs.unlink(Ino::ROOT, "f").unwrap();
        assert_eq!(fs.lookup(Ino::ROOT, "f"), Err(Errno::ENOENT));
    }

    #[test]
    fn entry_cache_absorbs_repeat_lookups() {
        let (fs, _) = mounted(FuseConfig::optimized());
        fs.mkdir(Ino::ROOT, "d", Mode::RWXR_XR_X, &root_ctx())
            .unwrap();
        for _ in 0..10 {
            fs.lookup(Ino::ROOT, "d").unwrap();
        }
        let conn = fs.conn_stats();
        assert_eq!(conn.lookups, 0, "mkdir primed the cache; no LOOKUPs");
        let stats = fs.stats();
        assert_eq!(stats.entry_hits, 10);
    }

    #[test]
    fn readahead_batches_sequential_reads() {
        let (fs, _) = mounted(FuseConfig::optimized());
        let st = fs
            .mknod(
                Ino::ROOT,
                "big",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &root_ctx(),
            )
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        fs.write(st.ino, fh, 0, &vec![7u8; 256 * 1024]).unwrap();
        let before = fs.conn_stats().reads;
        let mut buf = [0u8; 4096];
        for page in 0..64u64 {
            fs.read(st.ino, fh, page * 4096, &mut buf).unwrap();
        }
        let issued = fs.conn_stats().reads - before;
        // 256 KiB read in 4 KiB chunks with 128 KiB readahead = 2 requests.
        assert_eq!(issued, 2, "readahead must batch");
        assert!(fs.stats().readahead_hits >= 62);
    }

    #[test]
    fn no_async_read_means_per_call_requests() {
        let (fs, _) = mounted(FuseConfig::unoptimized());
        let st = fs
            .mknod(
                Ino::ROOT,
                "big",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &root_ctx(),
            )
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        fs.write(st.ino, fh, 0, &vec![7u8; 64 * 1024]).unwrap();
        let before = fs.conn_stats().reads;
        let mut buf = [0u8; 4096];
        for page in 0..16u64 {
            fs.read(st.ino, fh, page * 4096, &mut buf).unwrap();
        }
        assert_eq!(fs.conn_stats().reads - before, 16);
    }

    #[test]
    fn forget_batching_folds_requests() {
        let mut config = FuseConfig::optimized();
        config.forget_batch = 8;
        let (fs, _) = mounted(config);
        for (i, ino) in (0..8).map(|i| (i, Ino(100 + i))).collect::<Vec<_>>() {
            let _ = i;
            fs.forget(ino, 1);
        }
        let conn = fs.conn_stats();
        assert_eq!(conn.batch_forgets, 1);
        assert_eq!(conn.forgets, 0);

        // Without batch support: individual FORGETs.
        let mut unbatched = FuseConfig::optimized();
        unbatched.flags.batch_forget = false;
        unbatched.forget_batch = 8;
        let (fs2, _) = mounted(unbatched);
        for i in 0..8 {
            fs2.forget(Ino(200 + i), 1);
        }
        let conn2 = fs2.conn_stats();
        assert_eq!(conn2.batch_forgets, 0);
        assert_eq!(conn2.forgets, 8);
    }

    #[test]
    fn o_direct_is_rejected() {
        let (fs, _) = mounted(FuseConfig::optimized());
        let st = fs
            .mknod(
                Ino::ROOT,
                "f",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &root_ctx(),
            )
            .unwrap();
        assert_eq!(
            fs.open(st.ino, OpenFlags::RDONLY.with(OpenFlags::DIRECT)),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn features_encode_the_four_xfstests_failures() {
        let (fs, _) = mounted(FuseConfig::optimized());
        let f = fs.features();
        assert!(!f.direct_io); // #391
        assert!(!f.exportable_handles); // #426
        assert!(!f.enforces_caller_fsize); // #228
        assert!(!f.native_setgid_clearing); // #375
        assert!(!f.xattr_cached); // Apache overhead
        assert_eq!(fs.export_handle(Ino::ROOT), Err(Errno::EOPNOTSUPP));
    }

    #[test]
    fn dead_server_yields_enotconn() {
        let (fs, _) = mounted(FuseConfig::optimized());
        fs.kill_connection();
        assert_eq!(fs.getattr(Ino(42)), Err(Errno::ENOTCONN));
        assert_eq!(
            fs.mkdir(Ino::ROOT, "x", Mode::RWXR_XR_X, &root_ctx())
                .map(|_| ()),
            Err(Errno::ENOTCONN)
        );
    }

    #[test]
    fn parallel_dirops_cheapens_metadata() {
        let run = |flags: InitFlags| {
            let (fs, clock) = mounted(FuseConfig::optimized().with_flags(flags));
            let start = clock.now();
            for i in 0..100 {
                fs.mkdir(Ino::ROOT, &format!("d{i}"), Mode::RWXR_XR_X, &root_ctx())
                    .unwrap();
                fs.lookup(Ino::ROOT, &format!("d{i}")).unwrap();
            }
            (clock.now() - start).as_nanos()
        };
        let mut off = InitFlags::cntr_default();
        off.parallel_dirops = false;
        let with = run(InitFlags::cntr_default());
        let without = run(off);
        assert!(
            without > with * 2,
            "pipelining must cut metadata cost: with={with} without={without}"
        );
    }

    #[test]
    fn splice_read_cheapens_large_transfers() {
        let run = |flags: InitFlags| {
            let (fs, clock) = mounted(FuseConfig::optimized().with_flags(flags));
            let st = fs
                .mknod(
                    Ino::ROOT,
                    "f",
                    FileType::Regular,
                    Mode::RW_R__R__,
                    0,
                    &root_ctx(),
                )
                .unwrap();
            let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
            fs.write(st.ino, fh, 0, &vec![1u8; 1 << 20]).unwrap();
            let start = clock.now();
            let mut buf = vec![0u8; 128 * 1024];
            let mut off = 0u64;
            for _ in 0..8 {
                fs.read(st.ino, fh, off, &mut buf).unwrap();
                off += buf.len() as u64;
            }
            (clock.now() - start).as_nanos()
        };
        let mut no_splice = InitFlags::cntr_default();
        no_splice.splice_read = false;
        let with = run(InitFlags::cntr_default());
        let without = run(no_splice);
        assert!(
            without > with,
            "splice read must be cheaper: with={with} without={without}"
        );
    }

    #[test]
    fn splice_write_trades_header_peek_for_payload_remap() {
        let run = |flags: InitFlags, chunk: usize, total: usize| {
            let (fs, clock) = mounted(FuseConfig::optimized().with_flags(flags));
            let st = fs
                .mknod(
                    Ino::ROOT,
                    "f",
                    FileType::Regular,
                    Mode::RW_R__R__,
                    0,
                    &root_ctx(),
                )
                .unwrap();
            let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
            let data = vec![1u8; chunk];
            let start = clock.now();
            let mut off = 0u64;
            while off < total as u64 {
                fs.write(st.ino, fh, off, &data).unwrap();
                off += chunk as u64;
            }
            (clock.now() - start).as_nanos()
        };
        let spliced = InitFlags::cntr_default();
        let mut copied = InitFlags::cntr_default();
        copied.splice_write = false;

        // Large batched writes: the page remap beats the memcpy by far more
        // than the header-peek context switch costs (why the default flipped).
        let large_spliced = run(spliced, 1 << 20, 8 << 20);
        let large_copied = run(copied, 1 << 20, 8 << 20);
        assert!(
            large_spliced * 2 < large_copied,
            "1 MiB spliced writes must win big: spliced={large_spliced} copied={large_copied}"
        );

        // Tiny writes: the per-request peek dominates — the paper's §3.3
        // argument for shipping with splice-write off, still visible.
        let small_spliced = run(spliced, 512, 16 * 512);
        let small_copied = run(copied, 512, 16 * 512);
        assert!(
            small_spliced > small_copied,
            "sub-page writes still pay the peek: spliced={small_spliced} copied={small_copied}"
        );

        // Metadata requests are untaxed either way (the peek is charged to
        // spliced WRITEs only).
        let meta = |flags: InitFlags| {
            let (fs, clock) = mounted(FuseConfig::optimized().with_flags(flags));
            let start = clock.now();
            for i in 0..50 {
                fs.lookup(Ino::ROOT, &format!("missing{i}")).ok();
            }
            (clock.now() - start).as_nanos()
        };
        assert_eq!(
            meta(spliced),
            meta(copied),
            "splice-write must not tax metadata requests"
        );
    }

    #[test]
    fn more_workers_cost_sync_overhead() {
        let run = |workers: usize| {
            let (fs, clock) = mounted(FuseConfig::optimized().with_workers(workers));
            let st = fs
                .mknod(
                    Ino::ROOT,
                    "f",
                    FileType::Regular,
                    Mode::RW_R__R__,
                    0,
                    &root_ctx(),
                )
                .unwrap();
            let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
            fs.write(st.ino, fh, 0, &vec![1u8; 1 << 20]).unwrap();
            let start = clock.now();
            let mut buf = vec![0u8; 128 * 1024];
            let mut off = 0u64;
            for _ in 0..8 {
                fs.read(st.ino, fh, off, &mut buf).unwrap();
                off += buf.len() as u64;
            }
            (clock.now() - start).as_nanos()
        };
        let t1 = run(1);
        let t16 = run(16);
        assert!(t16 > t1, "16 workers must cost more sync: {t1} vs {t16}");
        // But modestly — single-digit percent territory (Figure 4).
        assert!(
            t16 < t1 * 13 / 10,
            "overhead should stay mild: {t1} vs {t16}"
        );
    }

    #[test]
    fn setattr_updates_cache_and_timestamps_flow() {
        let (fs, clock) = mounted(FuseConfig::optimized());
        let st = fs
            .mknod(
                Ino::ROOT,
                "t",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &root_ctx(),
            )
            .unwrap();
        clock.advance(5000);
        let updated = fs
            .setattr(
                st.ino,
                &SetAttr {
                    mtime: Some(Timespec::from_secs(99)),
                    ..SetAttr::default()
                },
                &root_ctx(),
            )
            .unwrap();
        assert_eq!(updated.mtime, Timespec::from_secs(99));
        // Cached attr reflects the update without another round trip.
        let before = fs.conn_stats().getattrs;
        let got = fs.getattr(st.ino).unwrap();
        assert_eq!(got.mtime, Timespec::from_secs(99));
        assert_eq!(fs.conn_stats().getattrs, before);
    }

    #[test]
    fn threaded_transport_end_to_end() {
        let clock = SimClock::new();
        let backing = memfs(DevId(1), clock.clone());
        let transport = Arc::new(crate::conn::ThreadedTransport::new(
            FsHandler::new(backing),
            4,
        ));
        let fs = FuseClientFs::mount(
            DevId(100),
            clock,
            CostModel::calibrated(),
            FuseConfig::optimized(),
            transport,
        )
        .unwrap();
        let st = fs
            .mknod(
                Ino::ROOT,
                "f",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &root_ctx(),
            )
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
        fs.write(st.ino, fh, 0, b"threads").unwrap();
        let mut buf = [0u8; 16];
        let n = fs.read(st.ino, fh, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"threads");
    }

    /// 8 caller threads over one client on a 4-worker [`ThreadedTransport`]:
    /// the entry/attr caches and the nlookup/forget accounting must stay
    /// consistent under real concurrent dispatch (ROADMAP: "stress-test the
    /// client caches under that concurrency").
    #[test]
    fn threaded_client_cache_stress() {
        let clock = SimClock::new();
        let backing = memfs(DevId(1), clock.clone());
        let transport = Arc::new(crate::conn::ThreadedTransport::new(
            FsHandler::new(backing),
            4,
        ));
        let fs = FuseClientFs::mount(
            DevId(100),
            clock,
            CostModel::calibrated(),
            FuseConfig::optimized(),
            transport,
        )
        .unwrap();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                let name = format!("file-{t}");
                let payload = name.clone().into_bytes();
                let st = fs
                    .mknod(
                        Ino::ROOT,
                        &name,
                        FileType::Regular,
                        Mode::RW_R__R__,
                        0,
                        &root_ctx(),
                    )
                    .unwrap();
                for round in 0..50 {
                    let fh = fs.open(st.ino, OpenFlags::RDWR).unwrap();
                    fs.write(st.ino, fh, 0, &payload).unwrap();
                    let mut buf = [0u8; 32];
                    let n = fs.read(st.ino, fh, 0, &mut buf).unwrap();
                    assert_eq!(&buf[..n], &payload[..], "read own write, round {round}");
                    fs.release(st.ino, fh).unwrap();
                    // Lookup churn across every thread's files exercises the
                    // shared entry cache; our own must always resolve.
                    let looked = fs.lookup(Ino::ROOT, &name).unwrap();
                    assert_eq!(looked.ino, st.ino, "entry cache must stay coherent");
                    let _ = fs.lookup(Ino::ROOT, &format!("file-{}", (t + round) % 8));
                    assert_eq!(fs.getattr(st.ino).unwrap().size, payload.len() as u64);
                }
                st.ino
            }));
        }
        let inos: Vec<Ino> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All files exist, contents survived the churn, counters add up.
        for (t, ino) in inos.iter().enumerate() {
            let st = fs.lookup(Ino::ROOT, &format!("file-{t}")).unwrap();
            assert_eq!(st.ino, *ino);
        }
        let stats = fs.stats();
        assert!(stats.entry_hits + stats.entry_misses > 0);
        assert!(fs.conn_stats().total() > 0);
    }
}
