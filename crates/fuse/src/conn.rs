//! The `/dev/fuse` connection: request transport between the kernel half
//! and the userspace server.
//!
//! Three transports share one interface:
//!
//! * [`InlineTransport`] executes the handler on the calling thread. All
//!   timing is charged through the virtual clock by the client and the
//!   handler itself, so experiments are deterministic.
//! * [`ThreadedTransport`] runs real worker threads fed by a crossbeam
//!   channel — the shape of a real FUSE daemon's read loop ("CNTR spawns
//!   independent threads to read from the CNTRFS file descriptor", §3.3).
//!   Used by stress tests to shake out synchronization bugs.
//! * [`RingTransport`](crate::ring::RingTransport) (in [`crate::ring`])
//!   feeds per-worker submission/completion ring pairs with batched
//!   doorbells, amortizing wakeups across many requests the way
//!   FUSE-over-io_uring does.

use crate::proto::{Opcode, Reply, Request};
use crate::server::FuseHandler;
use cntr_types::Errno;
use crossbeam::channel::{bounded, unbounded, Sender};
use obs::trace::{Span, TraceScope};
use obs::{LazyCounter, LazyGauge, Subsystem};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

// Global (cross-connection) request accounting, exported via
// `/proc/cntrstats`. Everything here is a relaxed atomic: these fire inside
// the transports' blocking-context checkpoints, where taking a lock is the
// PR-3 writeback deadlock class.
static REQ_STARTED: LazyCounter = LazyCounter::new(Subsystem::Fuse, "fuse.req.started");
static REQ_COMPLETED: LazyCounter = LazyCounter::new(Subsystem::Fuse, "fuse.req.completed");
static QUEUE_DEPTH: LazyGauge = LazyGauge::new(Subsystem::Fuse, "fuse.req.in-flight");

struct OpMetrics {
    count: &'static obs::Counter,
    latency: &'static obs::Histogram,
}

/// Per-opcode metric families (`fuse.op.<name>.count`,
/// `fuse.op.<name>.latency-ns`), indexed by the Linux uapi opcode value
/// and registered on first use of each opcode.
fn op_metrics(op: Opcode) -> &'static OpMetrics {
    static TABLE: [OnceLock<OpMetrics>; 64] = [const { OnceLock::new() }; 64];
    TABLE[op as u32 as usize].get_or_init(|| {
        let name = op.name();
        OpMetrics {
            count: obs::register_counter(Subsystem::Fuse, &format!("fuse.op.{name}.count")),
            latency: obs::register_histogram(
                Subsystem::Fuse,
                &format!("fuse.op.{name}.latency-ns"),
            ),
        }
    })
}

/// RAII accounting for one dispatched request: counts it started, holds the
/// in-flight gauge up for its lifetime, and records the per-opcode
/// round-trip latency on drop (panic-safe, so `started == completed` holds
/// even across handler panics).
pub(crate) struct ReqGuard {
    latency: &'static obs::Histogram,
    start_ns: u64,
}

impl ReqGuard {
    pub(crate) fn begin(op: Opcode) -> ReqGuard {
        REQ_STARTED.inc();
        QUEUE_DEPTH.inc();
        let m = op_metrics(op);
        m.count.inc();
        ReqGuard {
            latency: m.latency,
            start_ns: obs::now_ns(),
        }
    }
}

impl Drop for ReqGuard {
    fn drop(&mut self) {
        self.latency
            .record(obs::now_ns().saturating_sub(self.start_ns));
        QUEUE_DEPTH.dec();
        REQ_COMPLETED.inc();
    }
}

/// Per-opcode request counters of one connection.
#[derive(Debug, Default)]
pub struct ConnStats {
    lookups: AtomicU64,
    getattrs: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    getxattrs: AtomicU64,
    forgets: AtomicU64,
    batch_forgets: AtomicU64,
    others: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// Snapshot of [`ConnStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnSnapshot {
    /// LOOKUP requests.
    pub lookups: u64,
    /// GETATTR requests.
    pub getattrs: u64,
    /// READ requests.
    pub reads: u64,
    /// WRITE requests.
    pub writes: u64,
    /// GETXATTR requests.
    pub getxattrs: u64,
    /// Individual FORGET requests.
    pub forgets: u64,
    /// BATCH_FORGET requests.
    pub batch_forgets: u64,
    /// Everything else.
    pub others: u64,
    /// Bytes from kernel to server.
    pub bytes_in: u64,
    /// Bytes from server to kernel.
    pub bytes_out: u64,
}

impl ConnSnapshot {
    /// Total requests.
    pub fn total(&self) -> u64 {
        self.lookups
            + self.getattrs
            + self.reads
            + self.writes
            + self.getxattrs
            + self.forgets
            + self.batch_forgets
            + self.others
    }
}

impl ConnStats {
    /// Records one round trip. Takes the opcode and request wire size
    /// captured *before* dispatch — the hot path hands the `Request`
    /// itself to the handler by value, so transports no longer clone every
    /// request just to inspect it after the reply comes back.
    pub(crate) fn record(&self, op: Opcode, req_bytes: usize, reply: &Reply) {
        let counter = match op {
            Opcode::Lookup => &self.lookups,
            Opcode::Getattr => &self.getattrs,
            Opcode::Read => &self.reads,
            Opcode::Write => &self.writes,
            Opcode::Getxattr => &self.getxattrs,
            Opcode::Forget => &self.forgets,
            Opcode::BatchForget => &self.batch_forgets,
            _ => &self.others,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(req_bytes as u64, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(reply.wire_bytes() as u64, Ordering::Relaxed);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self) -> ConnSnapshot {
        ConnSnapshot {
            lookups: self.lookups.load(Ordering::Relaxed),
            getattrs: self.getattrs.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            getxattrs: self.getxattrs.load(Ordering::Relaxed),
            forgets: self.forgets.load(Ordering::Relaxed),
            batch_forgets: self.batch_forgets.load(Ordering::Relaxed),
            others: self.others.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// A FUSE request transport.
pub trait Transport: Send + Sync {
    /// Performs one round trip. Returns `Reply::Err(ENOTCONN)` if the
    /// server is gone.
    fn call(&self, req: Request) -> Reply;

    /// Tears the connection down (server crash / unmount). Subsequent calls
    /// fail with `ENOTCONN`.
    fn shutdown(&self);

    /// Whether the connection is still serving.
    fn is_alive(&self) -> bool;

    /// Request counters.
    fn stats(&self) -> ConnSnapshot;
}

/// Deterministic same-thread transport.
pub struct InlineTransport<H: FuseHandler> {
    handler: H,
    alive: AtomicBool,
    stats: ConnStats,
}

impl<H: FuseHandler> InlineTransport<H> {
    /// Wraps a handler.
    pub fn new(handler: H) -> Arc<InlineTransport<H>> {
        Arc::new(InlineTransport {
            handler,
            alive: AtomicBool::new(true),
            stats: ConnStats::default(),
        })
    }

    /// Access to the wrapped handler (tests, server-side stats).
    pub fn handler(&self) -> &H {
        &self.handler
    }
}

impl<H: FuseHandler> Transport for InlineTransport<H> {
    fn call(&self, req: Request) -> Reply {
        // Blocking-context checkpoint: the handler may re-enter the kernel
        // (writeback of dirty FUSE pages), so entering the transport while
        // holding a lock a re-entrant path could need is the PR-3 deadlock
        // class. Panic deterministically instead of deadlocking under rare
        // schedules. `kernel.fd_offset` is exempt for the same reason f_pos
        // is safe in Linux: it is held across fd-based I/O for POSIX offset
        // atomicity, and server-side paths (writeback included) go through
        // `Filesystem` methods, never through the caller's fd table.
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        lockdep::assert_no_locks_held_except(&["kernel.fd_offset"]);
        if !self.alive.load(Ordering::Acquire) {
            return Reply::Err(Errno::ENOTCONN);
        }
        let (op, req_bytes) = (req.opcode(), req.wire_bytes());
        let _req_guard = ReqGuard::begin(op);
        let reply = {
            let _span = Span::start("handler");
            self.handler.handle(req)
        };
        self.stats.record(op, req_bytes, &reply);
        reply
    }

    fn shutdown(&self) {
        self.alive.store(false, Ordering::Release);
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn stats(&self) -> ConnSnapshot {
        self.stats.snapshot()
    }
}

/// A queued request: the payload, its reply channel, and the submitting
/// thread's trace id (0 = untraced) so worker-side spans attribute to the
/// originating request.
type Job = (Request, Sender<Reply>, u64);

/// Connection ids for worker re-entrancy detection (0 = not a worker).
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh connection id (shared with [`crate::ring`] so ring and
/// threaded connections draw from one namespace).
pub(crate) fn next_conn_id() -> u64 {
    NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The connection id this thread serves as a worker, if any.
    pub(crate) static WORKER_OF: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Real-thread transport: `workers` threads pull requests off a shared
/// queue, as in a real multithreaded FUSE daemon.
///
/// A request issued *from one of this connection's own workers* (the
/// server's backing I/O tripped page-cache writeback of dirty FUSE pages,
/// re-entering the mount it is itself serving) executes inline on that
/// worker instead of being queued: queueing it behind the very request the
/// worker is blocked on is the classic FUSE writeback deadlock, which the
/// real kernel likewise refuses to create.
pub struct ThreadedTransport {
    id: u64,
    tx: Sender<Job>,
    /// Handler clone for re-entrant (worker-originated) requests.
    reentrant: Box<dyn Fn(Request) -> Reply + Send + Sync>,
    alive: Arc<AtomicBool>,
    stats: Arc<ConnStats>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadedTransport {
    /// Spawns `workers` threads serving `handler`.
    pub fn new<H: FuseHandler + Clone + 'static>(handler: H, workers: usize) -> ThreadedTransport {
        let id = next_conn_id();
        let (tx, rx) = unbounded::<Job>();
        let alive = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(ConnStats::default());
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let handler = handler.clone();
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    WORKER_OF.with(|w| w.set(id));
                    while let Ok((req, reply_tx, trace)) = rx.recv() {
                        // Adopt the submitter's trace so handler/storage
                        // spans land on the right request.
                        let _scope = TraceScope::enter(trace);
                        let (op, req_bytes) = (req.opcode(), req.wire_bytes());
                        let reply = {
                            let _span = Span::start_for(trace, "handler");
                            handler.handle(req)
                        };
                        stats.record(op, req_bytes, &reply);
                        let _ = reply_tx.send(reply);
                    }
                })
            })
            .collect();
        let reentrant_handler = handler;
        ThreadedTransport {
            id,
            tx,
            reentrant: Box::new(move |req| reentrant_handler.handle(req)),
            alive,
            stats,
            workers: handles,
        }
    }

    /// Waits for all workers to finish (after shutdown).
    pub fn join(mut self) {
        // Dropping the sender ends the worker loops.
        let (dead_tx, _) = unbounded();
        self.tx = dead_tx;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Number of live worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Transport for ThreadedTransport {
    fn call(&self, req: Request) -> Reply {
        // Blocking-context checkpoint: both paths below either park on
        // `reply_rx.recv()` or execute the handler inline; doing so while
        // holding a lock a worker could need is the PR-3 writeback deadlock
        // class. `kernel.fd_offset` is exempt — see `InlineTransport::call`.
        #[cfg(any(debug_assertions, feature = "lockdep"))]
        lockdep::assert_no_locks_held_except(&["kernel.fd_offset"]);
        if !self.alive.load(Ordering::Acquire) {
            return Reply::Err(Errno::ENOTCONN);
        }
        let (op, req_bytes) = (req.opcode(), req.wire_bytes());
        let _req_guard = ReqGuard::begin(op);
        if WORKER_OF.with(std::cell::Cell::get) == self.id {
            // Re-entrant request from one of our own workers: execute it on
            // this thread rather than deadlocking the pool (see type docs).
            let reply = {
                let _span = Span::start("handler");
                (self.reentrant)(req)
            };
            self.stats.record(op, req_bytes, &reply);
            return reply;
        }
        // The transport span covers queue + park + wake: everything between
        // submission and the worker's reply landing back on this thread.
        let _span = Span::start("transport");
        let trace = obs::trace::current_trace();
        let (reply_tx, reply_rx) = bounded(1);
        if self.tx.send((req, reply_tx, trace)).is_err() {
            return Reply::Err(Errno::ENOTCONN);
        }
        reply_rx.recv().unwrap_or(Reply::Err(Errno::ENOTCONN))
    }

    fn shutdown(&self) {
        self.alive.store(false, Ordering::Release);
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn stats(&self) -> ConnSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::RequestCtx;
    use cntr_types::Ino;

    #[derive(Clone)]
    struct EchoHandler;

    impl FuseHandler for EchoHandler {
        fn handle(&self, req: Request) -> Reply {
            match req {
                Request::Getattr { .. } => Reply::Err(Errno::ENOENT),
                Request::Readlink { .. } => Reply::Target("echo".into()),
                _ => Reply::Ok,
            }
        }
    }

    fn lookup() -> Request {
        Request::Lookup {
            parent: Ino::ROOT,
            name: "x".into(),
            ctx: RequestCtx::default(),
        }
    }

    #[test]
    fn inline_round_trip_and_stats() {
        let t = InlineTransport::new(EchoHandler);
        assert!(matches!(t.call(lookup()), Reply::Ok));
        assert!(matches!(
            t.call(Request::Getattr { ino: Ino(5) }),
            Reply::Err(Errno::ENOENT)
        ));
        let s = t.stats();
        assert_eq!(s.lookups, 1);
        assert_eq!(s.getattrs, 1);
        assert_eq!(s.total(), 2);
        assert!(s.bytes_in > 0);
    }

    #[test]
    fn shutdown_yields_enotconn() {
        let t = InlineTransport::new(EchoHandler);
        t.shutdown();
        assert!(!t.is_alive());
        assert!(matches!(t.call(lookup()), Reply::Err(Errno::ENOTCONN)));
    }

    #[test]
    fn threaded_transport_serves_concurrently() {
        let t = Arc::new(ThreadedTransport::new(EchoHandler, 4));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            joins.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    assert!(matches!(t.call(lookup()), Reply::Ok));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(t.stats().lookups, 800);
    }

    /// Entering either transport with a lock held is the PR-3 writeback
    /// deadlock class; the checkpoint must turn it into a deterministic
    /// panic that names the held class — on every run, not only under the
    /// losing schedule.
    #[test]
    #[cfg(any(debug_assertions, feature = "lockdep"))]
    fn call_with_lock_held_panics_at_the_checkpoint() {
        for threaded in [false, true] {
            let err = std::thread::spawn(move || {
                let t: Arc<dyn Transport> = if threaded {
                    Arc::new(ThreadedTransport::new(EchoHandler, 2))
                } else {
                    InlineTransport::new(EchoHandler)
                };
                let guard = parking_lot::Mutex::new_class("fuse.test.outer", ());
                let _held = guard.lock();
                t.call(lookup())
            })
            .join()
            .expect_err("call with a lock held must be rejected");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .expect("panic carries a message");
            assert!(msg.contains("blocking-context violation"), "{msg}");
            assert!(msg.contains("fuse.test.outer"), "{msg}");
        }
    }

    #[test]
    fn threaded_shutdown() {
        let t = ThreadedTransport::new(EchoHandler, 2);
        t.shutdown();
        assert!(matches!(t.call(lookup()), Reply::Err(Errno::ENOTCONN)));
    }
}
