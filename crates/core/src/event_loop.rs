//! The attach plane: one epoll event loop for every proxy and pty.
//!
//! The paper's proxy "runs an efficient event loop based on epoll"
//! (§3.2.4). Earlier revisions gave every [`SocketProxy`] its own epoll
//! instance and pumped them in turn, which falls over at scale: tokens
//! were derived from `conns.len()` (aliasing after a removal), closed
//! connections were never deregistered, and a stalled or dead peer on one
//! proxy could error the whole pump. This module replaces that with a
//! single [`EventLoop`] per attach plane that multiplexes *all* endpoints
//! — listeners, forwarded connection pairs, and ptys — under stable
//! slab-allocated tokens, with per-direction backpressure parking and
//! half-close propagation.
//!
//! # Token scheme
//!
//! Every registered endpoint occupies a slot in a generation-tagged slab.
//! The epoll token is `generation << 32 | slot`; freeing a slot bumps its
//! generation, so a late event for a torn-down endpoint decodes to a
//! stale token and is ignored instead of striking whatever reused the
//! slot.
//!
//! # Backpressure
//!
//! A forwarded direction that hits a full destination is *parked*: its
//! source drops out of the read interest set and the destination is
//! re-armed with [`Events::OUT`]. When the destination drains, the
//! writability event unparks the direction and pumping resumes — no
//! busy-looping, no dropped bytes.
//!
//! # Half-close
//!
//! `splice` returning `Ok(0)` means the source sent EOF. Only the
//! forward direction shuts down (`shutdown(SHUT_WR)` on the
//! destination); the reverse direction keeps flowing until it too
//! drains, and only then is the pair deregistered and closed.
//!
//! [`SocketProxy`]: crate::SocketProxy

use crate::pty::Pty;
use crate::shell::Shell;
use cntr_kernel::epoll::Events;
use cntr_kernel::Kernel;
use cntr_types::{Errno, Pid, SysResult};
use obs::{LazyCounter, LazyGauge, Subsystem};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

static OBS_POLLS: LazyCounter = LazyCounter::new(Subsystem::Core, "core.attach.loop-polls");
static OBS_ENDPOINTS: LazyGauge = LazyGauge::new(Subsystem::Core, "core.attach.endpoints");
static OBS_ACCEPTED: LazyCounter = LazyCounter::new(Subsystem::Core, "core.proxy.accepted");
static OBS_DIAL_ERRORS: LazyCounter = LazyCounter::new(Subsystem::Core, "core.proxy.dial-errors");
static OBS_BYTES: LazyCounter = LazyCounter::new(Subsystem::Core, "core.proxy.forwarded-bytes");
static OBS_LIVE: LazyGauge = LazyGauge::new(Subsystem::Core, "core.proxy.live-connections");
static OBS_PARKED: LazyGauge = LazyGauge::new(Subsystem::Core, "core.proxy.parked-directions");
static OBS_HALF_CLOSES: LazyCounter = LazyCounter::new(Subsystem::Core, "core.proxy.half-closes");
static OBS_PTY_PARKS: LazyCounter = LazyCounter::new(Subsystem::Core, "core.pty.parked-flushes");

/// Lock classes of the attach plane, ranked above the kernel's and the
/// FUSE ring's in the global lock-ordering table: plane locks are leaves
/// acquired *after* any kernel lock would be, which (with lockdep on)
/// proves no plane lock is ever held across a kernel syscall.
pub mod lock_class {
    /// [`Cntr`](crate::Cntr)'s lazily-created shared plane slot.
    pub const PLANE_SLOT: &str = "core.attach.plane";
    /// An attach session's proxy list.
    pub const SESSION_PROXIES: &str = "core.attach.proxies";
    /// The event loop's endpoint slab ([`super::EventLoop`]). Strict
    /// leaf: never held while entering the kernel.
    pub const LOOP_STATE: &str = "core.attach.loop-state";
}

/// Ranks the plane's lock classes: kernel groups 0–5 and FUSE-ring
/// groups 6–8 stay where their own crates declared them; the plane's
/// container locks land in group 9 and the loop slab is the group-10
/// leaf.
fn declare_plane_lock_discipline() {
    lockdep::ordering(&[
        &[],
        &[],
        &[],
        &[],
        &[],
        &[],
        &[],
        &[],
        &[],
        &[lock_class::PLANE_SLOT, lock_class::SESSION_PROXIES],
        &[lock_class::LOOP_STATE],
    ]);
}

/// Per-wait event budget; the kernel serves the ready set round-robin
/// across waits, so a small budget cannot starve high tokens.
const WAIT_BUDGET: usize = 256;
/// Splice chunk per call, matching the real proxy's 64 KiB buffer.
const SPLICE_CHUNK: usize = 64 * 1024;

/// Builds the epoll token for a slot at a generation.
fn token_of(gen: u32, slot: usize) -> u64 {
    (u64::from(gen) << 32) | slot as u64
}

/// Shared per-proxy bookkeeping: the listener endpoint plus counters the
/// [`SocketProxy`](crate::SocketProxy) handle exposes.
pub(crate) struct ProxyCore {
    /// Identity used to find this proxy's endpoints at teardown.
    id: u64,
    /// Listener fd in the plane process.
    listener_fd: u32,
    /// Process whose namespace originates upstream connections.
    connect_pid: Pid,
    /// Path of the real server socket.
    target_path: String,
    /// Live forwarded pairs.
    live: AtomicUsize,
    /// Connections accepted over the lifetime.
    accepted: AtomicU64,
    /// Upstream dials that failed (the client is closed, the proxy
    /// keeps serving).
    dial_errors: AtomicU64,
}

impl ProxyCore {
    /// Live forwarded connection pairs.
    pub(crate) fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Connections accepted so far.
    pub(crate) fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Failed upstream dials so far.
    pub(crate) fn dial_errors(&self) -> u64 {
        self.dial_errors.load(Ordering::Relaxed)
    }
}

/// Tokens of a pty registration, kept by the session for teardown.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PtyHandles {
    in_token: u64,
    out_token: u64,
}

/// What a slab slot points at.
enum Endpoint {
    /// A proxy's listening socket.
    Listener { proxy: Arc<ProxyCore> },
    /// One end of a forwarded pair. The endpoint owns the *forward*
    /// direction: bytes read from `fd` are spliced into the peer's fd.
    Conn {
        fd: u32,
        /// Slab slot of the other end.
        peer: usize,
        proxy: Arc<ProxyCore>,
        /// Forward direction still open (no EOF from `fd` yet).
        out_open: bool,
        /// Forward direction parked waiting for the peer to drain.
        parked: bool,
    },
    /// Read end of a pty's input pipe: pending user lines wake the
    /// shell.
    PtyIn {
        fd: u32,
        /// Slot of the paired [`Endpoint::PtyOut`].
        out_slot: usize,
        shell: Arc<Shell>,
        pty: Arc<Pty>,
        /// Shell output that did not fit in the output pipe; flushed on
        /// the out endpoint's writability.
        pending: Vec<u8>,
    },
    /// Write end of a pty's output pipe: armed with `OUT` only while
    /// the paired input endpoint holds a pending tail.
    PtyOut { fd: u32, in_slot: usize },
}

impl Endpoint {
    fn fd(&self) -> u32 {
        match self {
            Endpoint::Listener { proxy } => proxy.listener_fd,
            Endpoint::Conn { fd, .. }
            | Endpoint::PtyIn { fd, .. }
            | Endpoint::PtyOut { fd, .. } => *fd,
        }
    }
}

/// A slab slot: the generation survives frees so stale tokens miss.
struct Slot {
    gen: u32,
    ep: Option<Endpoint>,
}

struct State {
    slots: Vec<Slot>,
    free: Vec<usize>,
}

impl State {
    fn alloc(&mut self) -> usize {
        match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { gen: 0, ep: None });
                self.slots.len() - 1
            }
        }
    }

    /// Frees a slot, bumping its generation, and returns the endpoint.
    fn release(&mut self, idx: usize) -> Option<Endpoint> {
        let slot = self.slots.get_mut(idx)?;
        let ep = slot.ep.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        Some(ep)
    }

    fn token(&self, idx: usize) -> u64 {
        token_of(self.slots[idx].gen, idx)
    }

    /// Resolves a token to its slot if the generation still matches and
    /// the slot is occupied.
    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let slot = self.slots.get(idx)?;
        (slot.gen == (token >> 32) as u32 && slot.ep.is_some()).then_some(idx)
    }

    /// Epoll interest of a `Conn` endpoint: readable while its forward
    /// direction is open and not parked; writable while the *peer's*
    /// direction is parked waiting on this fd to drain.
    fn conn_interest(&self, idx: usize) -> Events {
        let (out_open, parked, peer) = match &self.slots[idx].ep {
            Some(Endpoint::Conn {
                out_open,
                parked,
                peer,
                ..
            }) => (*out_open, *parked, *peer),
            _ => return Events::default(),
        };
        let peer_parked = matches!(
            &self.slots[peer].ep,
            Some(Endpoint::Conn { parked: true, .. })
        );
        Events {
            readable: out_open && !parked,
            writable: peer_parked,
            hangup: false,
        }
    }
}

/// The epoll-driven event loop of one attach plane.
///
/// One loop multiplexes every endpoint of an attach plane — proxy
/// listeners, forwarded connection pairs, and pty pipes — inside a
/// single *plane process* whose fd table owns them all. Sessions
/// register and deregister endpoints dynamically; see the module docs
/// for the token, backpressure, and half-close schemes.
pub struct EventLoop {
    kernel: Kernel,
    /// The plane process owning every endpoint fd.
    pid: Pid,
    /// Whether [`EventLoop::new`] forked `pid` (and should reap it).
    owns_process: bool,
    /// The one epoll instance.
    epfd: u32,
    state: Mutex<State>,
    /// Single-pumper gate: concurrent `poll_once` callers see `Ok(0)`.
    polling: AtomicBool,
    next_proxy_id: AtomicU64,
}

impl EventLoop {
    /// Creates a plane with its own freshly-forked process. The process
    /// starts with an empty fd table (inherited descriptors are closed
    /// with `close_range`) so the epoll interest set is the *only*
    /// thing keeping plane fds alive.
    pub fn new(kernel: Kernel) -> SysResult<Arc<EventLoop>> {
        let pid = kernel.fork(Pid::INIT)?;
        kernel.set_name(pid, "cntr-plane")?;
        kernel.close_range(pid, 0)?;
        EventLoop::build(kernel, pid, true)
    }

    /// Creates a plane around an existing process (the caller keeps
    /// ownership of the process's lifetime). Used by standalone
    /// [`SocketProxy::new`](crate::SocketProxy::new).
    pub fn with_process(kernel: Kernel, pid: Pid) -> SysResult<Arc<EventLoop>> {
        EventLoop::build(kernel, pid, false)
    }

    fn build(kernel: Kernel, pid: Pid, owns_process: bool) -> SysResult<Arc<EventLoop>> {
        declare_plane_lock_discipline();
        let epfd = kernel.epoll_create(pid)?;
        Ok(Arc::new(EventLoop {
            kernel,
            pid,
            owns_process,
            epfd,
            state: Mutex::new_class(
                lock_class::LOOP_STATE,
                State {
                    slots: Vec::new(),
                    free: Vec::new(),
                },
            ),
            polling: AtomicBool::new(false),
            next_proxy_id: AtomicU64::new(1),
        }))
    }

    /// The kernel this loop runs on.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The plane process owning the endpoint fds.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Number of registered endpoints (listeners + connection ends +
    /// pty ends).
    pub fn endpoints(&self) -> usize {
        let st = self.state.lock();
        st.slots.len() - st.free.len()
    }

    /// Size of the epoll interest set — must track [`endpoints`]
    /// exactly; the connect/close-cycle tests assert it stays bounded.
    ///
    /// [`endpoints`]: EventLoop::endpoints
    pub fn interest_len(&self) -> SysResult<usize> {
        self.kernel.epoll_len(self.pid, self.epfd)
    }

    /// One event-loop iteration: a budgeted `epoll_wait` followed by
    /// dispatch of every returned event. Returns units of progress:
    /// bytes moved (spliced through proxies plus shell output written
    /// to ptys) plus one per freshly accepted connection. Re-entrant
    /// callers are turned away with `Ok(0)` — exactly one pumper runs
    /// at a time.
    pub fn poll_once(&self) -> SysResult<usize> {
        if self.polling.swap(true, Ordering::Acquire) {
            return Ok(0);
        }
        let result = self.poll_inner();
        self.polling.store(false, Ordering::Release);
        result
    }

    /// Pumps until an iteration makes no progress (quiesces in-flight
    /// data and pending accepts). Returns total progress units.
    pub fn pump_until_quiet(&self) -> SysResult<usize> {
        let mut total = 0;
        loop {
            let moved = self.poll_once()?;
            total += moved;
            if moved == 0 {
                return Ok(total);
            }
        }
    }

    fn poll_inner(&self) -> SysResult<usize> {
        // The loop's park point: entering the wait with any plane lock
        // held would deadlock a real blocking loop, so prove we hold
        // none.
        lockdep::assert_no_locks_held_except(&[]);
        let ready = self
            .kernel
            .epoll_wait_budget(self.pid, self.epfd, WAIT_BUDGET)?;
        OBS_POLLS.inc();
        let mut moved = 0usize;
        for (token, ev) in ready {
            moved += self.dispatch(token, ev)?;
        }
        Ok(moved)
    }

    /// Routes one epoll event. Stale tokens (generation mismatch after
    /// a teardown) are ignored.
    fn dispatch(&self, token: u64, ev: Events) -> SysResult<usize> {
        enum Act {
            Accept(Arc<ProxyCore>),
            ListenerGone(usize),
            /// Unpark the direction that reads from this slot (the
            /// event fired on its destination).
            Unpark(usize),
            Pump(usize),
            DriveShell(usize),
            FlushPty(usize),
        }
        let acts: Vec<Act> = {
            let st = self.state.lock();
            let Some(idx) = st.resolve(token) else {
                return Ok(0);
            };
            match st.slots[idx].ep.as_ref().expect("resolved slot occupied") {
                Endpoint::Listener { proxy } => {
                    if ev.readable {
                        vec![Act::Accept(Arc::clone(proxy))]
                    } else if ev.hangup {
                        vec![Act::ListenerGone(idx)]
                    } else {
                        Vec::new()
                    }
                }
                Endpoint::Conn {
                    peer,
                    out_open,
                    parked,
                    ..
                } => {
                    let mut acts = Vec::new();
                    if ev.writable {
                        // This fd drained: the peer's parked direction
                        // can resume writing into it.
                        acts.push(Act::Unpark(*peer));
                    }
                    if (ev.readable || ev.hangup) && *out_open && !*parked {
                        acts.push(Act::Pump(idx));
                    }
                    acts
                }
                Endpoint::PtyIn { pending, .. } => {
                    if ev.readable && pending.is_empty() {
                        vec![Act::DriveShell(idx)]
                    } else {
                        Vec::new()
                    }
                }
                Endpoint::PtyOut { in_slot, .. } => {
                    if ev.writable {
                        vec![Act::FlushPty(*in_slot)]
                    } else {
                        Vec::new()
                    }
                }
            }
        };
        let mut moved = 0;
        for act in acts {
            moved += match act {
                Act::Accept(proxy) => self.accept_burst(&proxy)?,
                Act::ListenerGone(idx) => {
                    self.drop_endpoint(idx);
                    0
                }
                Act::Unpark(idx) => self.unpark(idx)?,
                Act::Pump(idx) => self.pump_direction(idx)?,
                Act::DriveShell(idx) => self.drive_shell(idx)?,
                Act::FlushPty(idx) => self.flush_pty(idx)?,
            };
        }
        Ok(moved)
    }

    // ------------------------------------------------------------------
    // Proxy endpoints.
    // ------------------------------------------------------------------

    /// Registers a proxy's already-bound listener fd (owned by the
    /// plane process) and starts accepting on it.
    pub(crate) fn register_listener(
        &self,
        listener_fd: u32,
        connect_pid: Pid,
        target_path: &str,
    ) -> SysResult<Arc<ProxyCore>> {
        let proxy = Arc::new(ProxyCore {
            id: self.next_proxy_id.fetch_add(1, Ordering::Relaxed),
            listener_fd,
            connect_pid,
            target_path: target_path.to_string(),
            live: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            dial_errors: AtomicU64::new(0),
        });
        let token = {
            let mut st = self.state.lock();
            let idx = st.alloc();
            st.slots[idx].ep = Some(Endpoint::Listener {
                proxy: Arc::clone(&proxy),
            });
            st.token(idx)
        };
        self.kernel
            .epoll_add(self.pid, self.epfd, listener_fd, token, Events::IN)?;
        OBS_ENDPOINTS.inc();
        Ok(proxy)
    }

    /// Deregisters a proxy: its listener and every forwarded pair it
    /// owns leave the interest set and their fds are closed.
    pub(crate) fn remove_proxy(&self, proxy: &ProxyCore) {
        let victims: Vec<(u64, Endpoint)> = {
            let mut st = self.state.lock();
            let matching: Vec<usize> = (0..st.slots.len())
                .filter(|&i| match &st.slots[i].ep {
                    Some(Endpoint::Listener { proxy: p })
                    | Some(Endpoint::Conn { proxy: p, .. }) => p.id == proxy.id,
                    _ => false,
                })
                .collect();
            matching
                .into_iter()
                .map(|i| {
                    let tok = st.token(i);
                    (tok, st.release(i).expect("matched slot occupied"))
                })
                .collect()
        };
        for (tok, ep) in victims {
            let _ = self.kernel.epoll_del(self.pid, self.epfd, tok);
            let _ = self.kernel.close(self.pid, ep.fd());
            OBS_ENDPOINTS.dec();
            if let Endpoint::Conn { parked: true, .. } = ep {
                OBS_PARKED.dec();
            }
        }
        let live = proxy.live.swap(0, Ordering::Relaxed);
        OBS_LIVE.get().add(-(live as i64));
    }

    /// Accepts every pending client on a listener, dialing upstream for
    /// each. A failed dial closes that client and increments the
    /// dial-error counters — it never aborts the loop or other
    /// sessions. Freshly-registered pairs are pumped immediately so
    /// bytes that raced ahead of registration are not stranded until
    /// the next wait.
    fn accept_burst(&self, proxy: &Arc<ProxyCore>) -> SysResult<usize> {
        let k = &self.kernel;
        let mut moved = 0;
        while let Ok(client) = k.accept(self.pid, proxy.listener_fd) {
            // An accept is progress even when no payload follows yet:
            // `pump_until_quiet` must keep iterating while listeners
            // beyond this wait's budget still hold pending clients.
            moved += 1;
            proxy.accepted.fetch_add(1, Ordering::Relaxed);
            OBS_ACCEPTED.inc();
            // Originate upstream in the connect process's namespace,
            // then bring the fd home over SCM_RIGHTS so the plane owns
            // both ends.
            let upstream = k
                .connect(proxy.connect_pid, &proxy.target_path)
                .and_then(|remote| {
                    let local = k.send_fd(proxy.connect_pid, remote, self.pid)?;
                    k.close(proxy.connect_pid, remote)?;
                    Ok(local)
                });
            match upstream {
                Ok(up) => {
                    let (a, b) = self.register_pair(proxy, client, up)?;
                    moved += self.pump_direction(a)?;
                    moved += self.pump_direction(b)?;
                }
                Err(_) => {
                    proxy.dial_errors.fetch_add(1, Ordering::Relaxed);
                    OBS_DIAL_ERRORS.inc();
                    let _ = k.close(self.pid, client);
                }
            }
        }
        Ok(moved)
    }

    /// Registers a forwarded pair under fresh tokens.
    fn register_pair(
        &self,
        proxy: &Arc<ProxyCore>,
        client: u32,
        upstream: u32,
    ) -> SysResult<(usize, usize)> {
        let (ct, ut, cidx, uidx) = {
            let mut st = self.state.lock();
            let cidx = st.alloc();
            let uidx = st.alloc();
            st.slots[cidx].ep = Some(Endpoint::Conn {
                fd: client,
                peer: uidx,
                proxy: Arc::clone(proxy),
                out_open: true,
                parked: false,
            });
            st.slots[uidx].ep = Some(Endpoint::Conn {
                fd: upstream,
                peer: cidx,
                proxy: Arc::clone(proxy),
                out_open: true,
                parked: false,
            });
            (st.token(cidx), st.token(uidx), cidx, uidx)
        };
        self.kernel
            .epoll_add(self.pid, self.epfd, client, ct, Events::IN)?;
        self.kernel
            .epoll_add(self.pid, self.epfd, upstream, ut, Events::IN)?;
        proxy.live.fetch_add(1, Ordering::Relaxed);
        OBS_LIVE.inc();
        OBS_ENDPOINTS.get().add(2);
        Ok((cidx, uidx))
    }

    /// Splices one forwarded direction until it would block, parks on a
    /// full destination, and propagates EOF as a half-close.
    fn pump_direction(&self, idx: usize) -> SysResult<usize> {
        let (src_fd, dst_fd) = {
            let st = self.state.lock();
            match st.slots.get(idx).and_then(|s| s.ep.as_ref()) {
                Some(Endpoint::Conn {
                    fd,
                    peer,
                    out_open: true,
                    parked: false,
                    ..
                }) => match &st.slots[*peer].ep {
                    Some(peer_ep) => (*fd, peer_ep.fd()),
                    None => return Ok(0),
                },
                _ => return Ok(0),
            }
        };
        let mut moved = 0;
        loop {
            match self.kernel.splice(self.pid, src_fd, dst_fd, SPLICE_CHUNK) {
                Ok(0) => {
                    // A state transition is progress: `pump_until_quiet`
                    // must keep polling while endpoints beyond this
                    // wait's budget still have EOFs to propagate.
                    self.half_close(idx);
                    moved += 1;
                    break;
                }
                Ok(n) => {
                    moved += n;
                    OBS_BYTES.add(n as u64);
                }
                Err(Errno::EAGAIN) => {
                    // Distinguish a drained source from a full
                    // destination: only the latter parks.
                    if self.kernel.poll_fd(self.pid, src_fd)?.readable {
                        self.park(idx)?;
                    }
                    break;
                }
                Err(_) => {
                    // Connection error (e.g. reset): drop the pair —
                    // also progress, as above.
                    self.teardown_pair(idx);
                    moved += 1;
                    break;
                }
            }
        }
        Ok(moved)
    }

    /// Parks `idx`'s forward direction: its source leaves the read set
    /// and its destination is armed for writability.
    fn park(&self, idx: usize) -> SysResult<()> {
        let mods = {
            let mut st = self.state.lock();
            let peer = match st.slots.get_mut(idx).and_then(|s| s.ep.as_mut()) {
                Some(Endpoint::Conn { parked, peer, .. }) => {
                    if *parked {
                        return Ok(());
                    }
                    *parked = true;
                    *peer
                }
                _ => return Ok(()),
            };
            [
                (st.token(idx), st.conn_interest(idx)),
                (st.token(peer), st.conn_interest(peer)),
            ]
        };
        OBS_PARKED.inc();
        for (tok, interest) in mods {
            self.kernel.epoll_mod(self.pid, self.epfd, tok, interest)?;
        }
        Ok(())
    }

    /// Unparks the direction reading from slot `idx` (its destination
    /// became writable) and resumes pumping it.
    fn unpark(&self, idx: usize) -> SysResult<usize> {
        let mods = {
            let mut st = self.state.lock();
            let peer = match st.slots.get_mut(idx).and_then(|s| s.ep.as_mut()) {
                Some(Endpoint::Conn { parked, peer, .. }) => {
                    if !*parked {
                        return Ok(0);
                    }
                    *parked = false;
                    *peer
                }
                _ => return Ok(0),
            };
            [
                (st.token(idx), st.conn_interest(idx)),
                (st.token(peer), st.conn_interest(peer)),
            ]
        };
        OBS_PARKED.dec();
        for (tok, interest) in mods {
            self.kernel.epoll_mod(self.pid, self.epfd, tok, interest)?;
        }
        self.pump_direction(idx)
    }

    /// EOF on `idx`'s source: shuts down the forward direction only.
    /// The pair is torn down once *both* directions have drained.
    fn half_close(&self, idx: usize) {
        let (dst_fd, both_closed, my_token, my_interest) = {
            let mut st = self.state.lock();
            let peer = match st.slots.get_mut(idx).and_then(|s| s.ep.as_mut()) {
                Some(Endpoint::Conn { out_open, peer, .. }) => {
                    if !*out_open {
                        return;
                    }
                    *out_open = false;
                    *peer
                }
                _ => return,
            };
            let (dst_fd, peer_open) = match &st.slots[peer].ep {
                Some(Endpoint::Conn { fd, out_open, .. }) => (*fd, *out_open),
                Some(other) => (other.fd(), false),
                None => return,
            };
            (dst_fd, !peer_open, st.token(idx), st.conn_interest(idx))
        };
        OBS_HALF_CLOSES.inc();
        // Propagate EOF: the upstream peer drains in-flight bytes and
        // then reads end-of-stream, exactly like shutdown(SHUT_WR).
        let _ = self.kernel.shutdown_write(self.pid, dst_fd);
        if both_closed {
            self.teardown_pair(idx);
        } else {
            let _ = self
                .kernel
                .epoll_mod(self.pid, self.epfd, my_token, my_interest);
        }
    }

    /// Removes a pair from the interest set, closes both fds, and frees
    /// both slots.
    fn teardown_pair(&self, idx: usize) {
        let removed: Vec<(u64, Endpoint)> = {
            let mut st = self.state.lock();
            let peer = match st.slots.get(idx).and_then(|s| s.ep.as_ref()) {
                Some(Endpoint::Conn { peer, .. }) => *peer,
                _ => return,
            };
            [idx, peer]
                .into_iter()
                .filter_map(|i| {
                    let tok = st.token(i);
                    st.release(i).map(|ep| (tok, ep))
                })
                .collect()
        };
        let mut proxy = None;
        for (tok, ep) in removed {
            let _ = self.kernel.epoll_del(self.pid, self.epfd, tok);
            let _ = self.kernel.close(self.pid, ep.fd());
            OBS_ENDPOINTS.dec();
            if let Endpoint::Conn {
                parked, proxy: p, ..
            } = ep
            {
                if parked {
                    OBS_PARKED.dec();
                }
                proxy = Some(p);
            }
        }
        if let Some(p) = proxy {
            p.live.fetch_sub(1, Ordering::Relaxed);
            OBS_LIVE.dec();
        }
    }

    /// Drops a single endpoint (listener hangup path).
    fn drop_endpoint(&self, idx: usize) {
        let removed = {
            let mut st = self.state.lock();
            let tok = st.token(idx);
            st.release(idx).map(|ep| (tok, ep))
        };
        if let Some((tok, ep)) = removed {
            let _ = self.kernel.epoll_del(self.pid, self.epfd, tok);
            let _ = self.kernel.close(self.pid, ep.fd());
            OBS_ENDPOINTS.dec();
        }
    }

    // ------------------------------------------------------------------
    // Pty endpoints.
    // ------------------------------------------------------------------

    /// Registers a session's pty with the loop: user input wakes the
    /// shell, and shell output that overruns the output pipe parks
    /// until the user-side reader drains it.
    pub(crate) fn register_pty(&self, pty: &Arc<Pty>, shell: &Arc<Shell>) -> SysResult<PtyHandles> {
        let in_fd = self.kernel.adopt_pipe(self.pid, pty.input_pipe(), false)?;
        let out_fd = self.kernel.adopt_pipe(self.pid, pty.output_pipe(), true)?;
        let (in_token, out_token) = {
            let mut st = self.state.lock();
            let in_idx = st.alloc();
            let out_idx = st.alloc();
            st.slots[in_idx].ep = Some(Endpoint::PtyIn {
                fd: in_fd,
                out_slot: out_idx,
                shell: Arc::clone(shell),
                pty: Arc::clone(pty),
                pending: Vec::new(),
            });
            st.slots[out_idx].ep = Some(Endpoint::PtyOut {
                fd: out_fd,
                in_slot: in_idx,
            });
            (st.token(in_idx), st.token(out_idx))
        };
        self.kernel
            .epoll_add(self.pid, self.epfd, in_fd, in_token, Events::IN)?;
        self.kernel
            .epoll_add(self.pid, self.epfd, out_fd, out_token, Events::default())?;
        OBS_ENDPOINTS.get().add(2);
        Ok(PtyHandles {
            in_token,
            out_token,
        })
    }

    /// Deregisters a pty pair registered with [`register_pty`].
    ///
    /// [`register_pty`]: EventLoop::register_pty
    pub(crate) fn remove_pty(&self, handles: PtyHandles) {
        for tok in [handles.in_token, handles.out_token] {
            let removed = {
                let mut st = self.state.lock();
                st.resolve(tok).and_then(|i| st.release(i))
            };
            if let Some(ep) = removed {
                let _ = self.kernel.epoll_del(self.pid, self.epfd, tok);
                let _ = self.kernel.close(self.pid, ep.fd());
                OBS_ENDPOINTS.dec();
            }
        }
    }

    /// Reads complete lines from the pty, runs them through the shell,
    /// and writes the output back. A full output pipe parks the
    /// session: input interest is masked and the out endpoint armed for
    /// writability, so a stalled reader stalls only its own session.
    fn drive_shell(&self, idx: usize) -> SysResult<usize> {
        let (shell, pty) = {
            let st = self.state.lock();
            match st.slots.get(idx).and_then(|s| s.ep.as_ref()) {
                Some(Endpoint::PtyIn {
                    shell,
                    pty,
                    pending,
                    ..
                }) if pending.is_empty() => (Arc::clone(shell), Arc::clone(pty)),
                _ => return Ok(0),
            }
        };
        let mut moved = 0;
        while let Ok(Some(line)) = pty.shell_read_line() {
            let out = shell.run(&line);
            let written = match pty.shell_write_raw(out.as_bytes()) {
                Ok(n) => n,
                // The user side hung up: discard output, keep draining
                // input so the shell can observe the EOF.
                Err(_) => continue,
            };
            moved += written;
            if written < out.len() {
                self.park_pty(idx, out.as_bytes()[written..].to_vec())?;
                break;
            }
        }
        Ok(moved)
    }

    /// Parks a pty session on its stalled reader.
    fn park_pty(&self, idx: usize, tail: Vec<u8>) -> SysResult<()> {
        let mods = {
            let mut st = self.state.lock();
            match st.slots.get_mut(idx).and_then(|s| s.ep.as_mut()) {
                Some(Endpoint::PtyIn {
                    pending, out_slot, ..
                }) => {
                    *pending = tail;
                    let out_slot = *out_slot;
                    [
                        (st.token(idx), Events::default()),
                        (st.token(out_slot), Events::OUT),
                    ]
                }
                _ => return Ok(()),
            }
        };
        OBS_PTY_PARKS.inc();
        for (tok, interest) in mods {
            self.kernel.epoll_mod(self.pid, self.epfd, tok, interest)?;
        }
        Ok(())
    }

    /// The user-side reader drained the output pipe: flush the pending
    /// tail and, once it fits, resume reading input.
    fn flush_pty(&self, idx: usize) -> SysResult<usize> {
        let (pty, tail, out_slot) = {
            let mut st = self.state.lock();
            match st.slots.get_mut(idx).and_then(|s| s.ep.as_mut()) {
                Some(Endpoint::PtyIn {
                    pty,
                    pending,
                    out_slot,
                    ..
                }) => (Arc::clone(pty), std::mem::take(pending), *out_slot),
                _ => return Ok(0),
            }
        };
        if tail.is_empty() {
            return Ok(0);
        }
        let written = pty.shell_write_raw(&tail).unwrap_or(tail.len());
        if written < tail.len() {
            // Still stalled: put the rest back and stay parked.
            let mut st = self.state.lock();
            if let Some(Endpoint::PtyIn { pending, .. }) =
                st.slots.get_mut(idx).and_then(|s| s.ep.as_mut())
            {
                *pending = tail[written..].to_vec();
            }
            return Ok(written);
        }
        // Fully flushed: re-arm input, disarm the out endpoint, and
        // pick up any input lines that queued while parked.
        let mods = {
            let st = self.state.lock();
            [
                (st.token(idx), Events::IN),
                (st.token(out_slot), Events::default()),
            ]
        };
        for (tok, interest) in mods {
            self.kernel.epoll_mod(self.pid, self.epfd, tok, interest)?;
        }
        Ok(written + self.drive_shell(idx)?)
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        if self.owns_process {
            let _ = self.kernel.exit(self.pid);
            let _ = self.kernel.reap(self.pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_engine::runtime::boot_host;
    use cntr_types::SimClock;

    #[test]
    fn plane_process_starts_with_clean_fd_table() {
        let k = boot_host(SimClock::new());
        // INIT gains some fds the plane must not inherit.
        let (r, w) = k.pipe(Pid::INIT).unwrap();
        let plane = EventLoop::new(k.clone()).unwrap();
        // The inherited pipe fds were close_range'd away in the plane.
        let mut buf = [0u8; 1];
        assert_eq!(k.read_fd(plane.pid(), r, &mut buf), Err(Errno::EBADF));
        assert_eq!(k.write_fd(plane.pid(), w, b"x"), Err(Errno::EBADF));
        // INIT's own ends are untouched.
        k.write_fd(Pid::INIT, w, b"y").unwrap();
        assert_eq!(plane.endpoints(), 0);
        assert_eq!(plane.interest_len().unwrap(), 0);
    }

    #[test]
    fn pty_output_integrity_under_stalled_reader() {
        let k = boot_host(SimClock::new());
        let plane = EventLoop::new(k.clone()).unwrap();
        let pty = Pty::new();
        let shell = Arc::new(Shell::new(k.clone(), Pid::INIT, Arc::clone(&pty)));
        let handles = plane.register_pty(&pty, &shell).unwrap();
        assert_eq!(plane.endpoints(), 2);

        // Echo back ~1.4 MiB through a 1 MiB output pipe whose reader
        // only drains when the input side jams: the loop must park on
        // the full pipe and resume without losing or reordering bytes.
        let payload = "x".repeat(1024);
        let lines = 1400;
        let mut out = String::new();
        for i in 0..lines {
            let line = format!("echo {i}:{payload}");
            loop {
                match pty.user_write_line(&line) {
                    Ok(()) => break,
                    Err(Errno::EAGAIN) => {
                        // Input pipe full: crank the loop and drain the
                        // stalled reader a little.
                        plane.poll_once().unwrap();
                        out.push_str(&pty.user_read_all());
                    }
                    Err(e) => panic!("user_write_line: {e}"),
                }
            }
        }
        loop {
            let moved = plane.poll_once().unwrap();
            let drained = pty.user_read_all();
            out.push_str(&drained);
            if moved == 0 && drained.is_empty() {
                break;
            }
        }
        let got: Vec<&str> = out.lines().collect();
        assert_eq!(got.len(), lines, "every echoed line arrived");
        for (i, line) in got.iter().enumerate() {
            assert_eq!(*line, format!("{i}:{payload}"), "line {i} intact");
        }

        plane.remove_pty(handles);
        assert_eq!(plane.endpoints(), 0);
        assert_eq!(plane.interest_len().unwrap(), 0);
    }

    #[test]
    fn stale_tokens_are_ignored_after_teardown() {
        let k = boot_host(SimClock::new());
        let plane = EventLoop::new(k.clone()).unwrap();
        let pty = Pty::new();
        let shell = Arc::new(Shell::new(k.clone(), Pid::INIT, Arc::clone(&pty)));
        let handles = plane.register_pty(&pty, &shell).unwrap();
        plane.remove_pty(handles);
        // A late event carrying the dead generation must not strike the
        // slot's next occupant.
        let pty2 = Pty::new();
        let shell2 = Arc::new(Shell::new(k.clone(), Pid::INIT, Arc::clone(&pty2)));
        let _handles2 = plane.register_pty(&pty2, &shell2).unwrap();
        assert_eq!(plane.dispatch(handles.in_token, Events::IN).unwrap(), 0);
        // Double-removal of the old registration is a no-op.
        plane.remove_pty(handles);
        assert_eq!(plane.endpoints(), 2);
    }
}
