//! The CNTR attach workflow (paper §3.1–§3.2): the four steps that merge a
//! slim application container with a fat tools container (or the host).
//!
//! 1. **Resolve container name and obtain container context** — engine
//!    name→pid resolution plus `/proc` inspection ([`ContainerContext`]).
//! 2. **Launch the CntrFS server** — a forked process, `setns`ed into the
//!    fat container's mount namespace when tools come from an image.
//! 3. **Initialize the tools namespace** — join the application container's
//!    namespaces and cgroup, `unshare` a **nested mount namespace**, mark
//!    everything private, mount CntrFS at a temporary root, bind the
//!    application's `/` to `/var/lib/cntr`, bind its `/proc`, `/dev` and
//!    selected `/etc` files over the tools view, and `chroot` into it.
//! 4. **Start the interactive shell** — environment from the application
//!    (except `PATH`, which comes from the tools side), credentials dropped
//!    to the container's bounding set and LSM profile, I/O over a pseudo-TTY.

use crate::cntrfs::CntrfsServer;
use crate::context::ContainerContext;
use crate::event_loop::{lock_class, EventLoop, PtyHandles};
use crate::proxy::SocketProxy;
use crate::pty::Pty;
use crate::shell::Shell;
use cntr_engine::ContainerRuntime;
use cntr_fuse::{FuseClientFs, FuseConfig, InlineTransport};
use cntr_kernel::{CacheMode, Kernel, MountFlags, NamespaceKind};
use cntr_types::{DevId, Errno, Mode, OpenFlags, Pid, SysResult};
use obs::{LazyCounter, LazyHistogram, Subsystem, Timed};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Attach is the third leg of the container lifecycle (after spawn and
// before reap, both metered in `cntr-engine`); it shares their subsystem.
static OBS_ATTACHES: LazyCounter = LazyCounter::new(Subsystem::Engine, "engine.attach.count");
static OBS_ATTACH_NS: LazyHistogram =
    LazyHistogram::new(Subsystem::Engine, "engine.attach.latency-ns");

/// Where the tools come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolsLocation {
    /// Serve the host's root filesystem.
    Host,
    /// Serve the root filesystem of a running fat container (by pid; use
    /// [`Cntr::attach_with_engine`] to resolve names).
    FatContainer(Pid),
}

/// Attach options.
#[derive(Debug, Clone, Copy)]
pub struct CntrOptions {
    /// FUSE mount configuration (the §3.3 optimizations).
    pub fuse: FuseConfig,
    /// Tools source.
    pub tools: ToolsLocation,
}

impl Default for CntrOptions {
    fn default() -> CntrOptions {
        CntrOptions {
            fuse: FuseConfig::optimized(),
            tools: ToolsLocation::Host,
        }
    }
}

static NEXT_FUSE_DEV: AtomicU64 = AtomicU64::new(0xF000);
static NEXT_TMP: AtomicU64 = AtomicU64::new(1);

/// The CNTR tool.
pub struct Cntr {
    kernel: Kernel,
    /// The shared attach plane: one epoll event loop multiplexing every
    /// session's proxies and ptys. Created lazily on first attach.
    plane: Mutex<Option<Arc<EventLoop>>>,
}

impl Cntr {
    /// Creates the tool on a machine.
    pub fn new(kernel: Kernel) -> Cntr {
        Cntr {
            kernel,
            plane: Mutex::new_class(lock_class::PLANE_SLOT, None),
        }
    }

    /// The shared attach plane, created on first use. The loop (and its
    /// plane process) is built *outside* the slot lock; a racing loser's
    /// loop is dropped, which reaps its process.
    pub fn plane(&self) -> SysResult<Arc<EventLoop>> {
        if let Some(p) = self.plane.lock().as_ref() {
            return Ok(Arc::clone(p));
        }
        let fresh = EventLoop::new(self.kernel.clone())?;
        let mut slot = self.plane.lock();
        Ok(Arc::clone(slot.get_or_insert(fresh)))
    }

    /// Attaches to the container running as `target`.
    pub fn attach(&self, target: Pid, opts: CntrOptions) -> SysResult<AttachSession> {
        let _timed = Timed::new(OBS_ATTACH_NS.get());
        OBS_ATTACHES.inc();
        // ------------------------------------------------------------------
        // Step #1: resolve and gather the container context via /proc.
        // ------------------------------------------------------------------
        let k = &self.kernel;
        let cntr_pid = k.fork(Pid::INIT)?;
        k.set_name(cntr_pid, "cntr")?;
        let context = ContainerContext::gather(k, cntr_pid, target)?;

        // The FUSE "control socket" is opened before attaching (paper
        // §3.2.1: "the CNTR process opens the FUSE control socket
        // (/dev/fuse). This file descriptor is required to mount the CNTRFS
        // filesystem, after attaching").
        let fuse_fd = k.open(cntr_pid, "/dev/fuse", OpenFlags::RDWR, Mode::RW_R__R__)?;

        // ------------------------------------------------------------------
        // Step #2: launch the CntrFS server (host or fat container).
        // ------------------------------------------------------------------
        let server_pid = k.fork(cntr_pid)?;
        k.set_name(server_pid, "cntrfs")?;
        if let ToolsLocation::FatContainer(fat_pid) = opts.tools {
            // The server joins the fat container's mount namespace; its
            // path resolution now happens inside the fat image.
            k.setns(server_pid, fat_pid, &[NamespaceKind::Mount])?;
        }
        let server = CntrfsServer::new(k.clone(), server_pid);
        let transport = InlineTransport::new(server.clone());
        let dev = DevId(NEXT_FUSE_DEV.fetch_add(1, Ordering::Relaxed));
        let client = FuseClientFs::mount(dev, k.clock().clone(), k.cost(), opts.fuse, transport)?;
        let flags = client.effective_flags();
        let cache = CacheMode {
            writeback: flags.writeback_cache,
            keep_cache: flags.keep_cache,
            synthetic: false,
        };

        // ------------------------------------------------------------------
        // Step #3: initialize the tools namespace.
        // ------------------------------------------------------------------
        let attached = k.fork(cntr_pid)?;
        k.set_name(attached, "cntr-shell")?;
        // Join every namespace of the application container and its cgroup.
        k.setns(
            attached,
            target,
            &[
                NamespaceKind::Mount,
                NamespaceKind::Pid,
                NamespaceKind::Net,
                NamespaceKind::Ipc,
                NamespaceKind::Uts,
                NamespaceKind::Cgroup,
                NamespaceKind::User,
            ],
        )?;
        k.cgroup_attach(attached, &cntr_kernel::CgroupPath(context.cgroup.clone()))?;
        // `setns` lands at the mount namespace root; adopt the target's
        // (possibly chrooted) root — `chroot("/proc/<pid>/root")` — so a
        // nested attach sees the same world the target does.
        k.adopt_root(attached, target)?;
        // The nested namespace: unshare and make private so nothing
        // propagates back into the application container.
        k.unshare(attached, &[NamespaceKind::Mount])?;
        k.make_rprivate(attached)?;

        // Mount CntrFS on a temporary mountpoint inside the container.
        let tmp = format!("/tmp/.cntr-{}", NEXT_TMP.fetch_add(1, Ordering::Relaxed));
        match k.mkdir(attached, &tmp, Mode::new(0o700)) {
            Ok(()) | Err(Errno::EEXIST) => {}
            Err(e) => return Err(e),
        }
        k.mount_fs(attached, &tmp, client.clone(), cache, MountFlags::default())?;

        // Re-mount the application's tree under TMP/var/lib/cntr. The
        // directory is created *through CntrFS* (i.e. on the tools side).
        for dir in ["var", "var/lib", "var/lib/cntr"] {
            match k.mkdir(attached, &format!("{tmp}/{dir}"), Mode::RWXR_XR_X) {
                Ok(()) | Err(Errno::EEXIST) => {}
                Err(e) => return Err(e),
            }
        }
        k.bind_mount_recursive(
            attached,
            "/",
            &format!("{tmp}/var/lib/cntr"),
            MountFlags::default(),
        )?;

        // Bind the application's /proc and /dev over the tools view, so
        // tools observe the application's processes and devices.
        for special in ["proc", "dev"] {
            match k.mkdir(attached, &format!("{tmp}/{special}"), Mode::RWXR_XR_X) {
                Ok(()) | Err(Errno::EEXIST) => {}
                Err(e) => return Err(e),
            }
            k.bind_mount(
                attached,
                &format!("/{special}"),
                &format!("{tmp}/{special}"),
                MountFlags::default(),
            )?;
        }
        // Bind selected /etc configuration files from the application.
        for file in ["passwd", "hostname", "resolv.conf", "hosts"] {
            let src = format!("/etc/{file}");
            if k.stat(attached, &src).is_err() {
                continue;
            }
            let dst = format!("{tmp}/etc/{file}");
            // The target must exist on the tools side before a file bind.
            if k.stat(attached, &dst).is_err() {
                match k.open(
                    attached,
                    &dst,
                    OpenFlags::WRONLY.with(OpenFlags::CREAT),
                    Mode::RW_R__R__,
                ) {
                    Ok(fd) => k.close(attached, fd)?,
                    Err(_) => continue,
                }
            }
            k.bind_mount(attached, &src, &dst, MountFlags::default())?;
        }

        // Atomically swap the root: chroot into TMP.
        k.chroot(attached, &tmp)?;

        // ------------------------------------------------------------------
        // Step #4: prepare identity and start the interactive shell.
        // ------------------------------------------------------------------
        // Environment from the application container — except PATH, which
        // is inherited from the tools side (§3.2.3).
        let tools_path = match opts.tools {
            ToolsLocation::Host => k
                .getenv(Pid::INIT, "PATH")?
                .unwrap_or_else(|| "/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin".to_string()),
            ToolsLocation::FatContainer(fat_pid) => k
                .getenv(fat_pid, "PATH")?
                .unwrap_or_else(|| "/usr/local/bin:/usr/bin:/bin".to_string()),
        };
        let mut env = context.env.clone();
        env.insert("PATH".to_string(), tools_path);
        k.set_environ(attached, env)?;
        // Drop privileges: intersect with the container's bounding set and
        // apply its LSM profile.
        let container_creds = k.creds(target)?;
        let mut attached_creds = k.creds(attached)?;
        attached_creds.confine_to(&container_creds);
        k.set_creds(attached, attached_creds)?;

        k.close(cntr_pid, fuse_fd)?;

        let pty = Pty::new();
        let shell = Arc::new(Shell::new(k.clone(), attached, Arc::clone(&pty)));
        // Join the shared attach plane: the session's pty (and later any
        // forwarded sockets) become endpoints of the one event loop.
        let plane = self.plane()?;
        let pty_handles = plane.register_pty(&pty, &shell)?;
        Ok(AttachSession {
            kernel: k.clone(),
            target,
            cntr_pid,
            server_pid,
            attached,
            context,
            client,
            server,
            plane,
            pty_handles,
            pty,
            shell,
            proxies: Mutex::new_class(lock_class::SESSION_PROXIES, Vec::new()),
        })
    }

    /// Resolves `name` with a container engine, then attaches. The fat
    /// container (if any) is resolved with the same engine.
    pub fn attach_with_engine(
        &self,
        engine: &ContainerRuntime,
        name: &str,
        fat_name: Option<&str>,
        fuse: FuseConfig,
    ) -> SysResult<AttachSession> {
        let target = engine.resolve(name)?;
        let tools = match fat_name {
            Some(fat) => ToolsLocation::FatContainer(engine.resolve(fat)?),
            None => ToolsLocation::Host,
        };
        self.attach(target, CntrOptions { fuse, tools })
    }
}

/// A live CNTR attachment.
pub struct AttachSession {
    kernel: Kernel,
    /// The application container's main process.
    pub target: Pid,
    /// The coordinator process on the host.
    pub cntr_pid: Pid,
    /// The CntrFS server process.
    pub server_pid: Pid,
    /// The attached process inside the nested namespace.
    pub attached: Pid,
    /// The gathered container context.
    pub context: ContainerContext,
    /// The FUSE client (kernel side of CntrFS).
    pub client: Arc<FuseClientFs>,
    /// The CntrFS server object.
    pub server: CntrfsServer,
    plane: Arc<EventLoop>,
    pty_handles: PtyHandles,
    pty: Arc<Pty>,
    shell: Arc<Shell>,
    proxies: Mutex<Vec<Arc<SocketProxy>>>,
}

impl AttachSession {
    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The interactive shell.
    pub fn shell(&self) -> &Shell {
        &self.shell
    }

    /// The user-facing pty master.
    pub fn pty(&self) -> &Arc<Pty> {
        &self.pty
    }

    /// Runs one command in the nested namespace and returns its output.
    pub fn run(&self, command: &str) -> String {
        self.shell.run(command)
    }

    /// The attach plane this session's endpoints are registered on.
    pub fn plane(&self) -> &Arc<EventLoop> {
        &self.plane
    }

    /// Registers a socket forwarder on the session's plane: it listens
    /// at `nested_path` (bound in the attached process's namespace, so
    /// in-container clients resolve it) and forwards to `target_path`
    /// on the tools side. The listener fd moves into the plane process.
    pub fn add_proxy(&self, nested_path: &str, target_path: &str) -> SysResult<Arc<SocketProxy>> {
        let proxy = SocketProxy::on_plane(
            &self.plane,
            self.attached,
            self.server_pid,
            nested_path,
            target_path,
        )?;
        self.proxies.lock().push(Arc::clone(&proxy));
        Ok(proxy)
    }

    /// Forwards a Unix socket (alias of [`add_proxy`]).
    ///
    /// [`add_proxy`]: AttachSession::add_proxy
    pub fn forward_socket(
        &self,
        nested_path: &str,
        target_path: &str,
    ) -> SysResult<Arc<SocketProxy>> {
        self.add_proxy(nested_path, target_path)
    }

    /// Pumps the session's plane until quiet. All of the plane's
    /// endpoints advance — a session cannot be pumped in isolation, by
    /// design.
    pub fn pump_proxies(&self) -> SysResult<usize> {
        self.plane.pump_until_quiet()
    }

    /// Kills the CntrFS server (failure injection): subsequent filesystem
    /// access in the nested namespace fails with `ENOTCONN`.
    pub fn kill_server(&self) {
        self.client.kill_connection();
    }

    /// Deregisters the session's endpoints from the live event loop
    /// (proxies first, then the pty pair), then tears down the session
    /// processes. The plane and every other session keep running; the
    /// application container is left untouched.
    pub fn teardown(&self) -> SysResult<()> {
        // Snapshot-and-clear under the lock, deregister outside it: the
        // plane takes kernel locks, which rank below the proxy list.
        let proxies: Vec<Arc<SocketProxy>> = std::mem::take(&mut *self.proxies.lock());
        for proxy in proxies {
            proxy.unregister();
        }
        self.plane.remove_pty(self.pty_handles);
        let k = &self.kernel;
        for pid in [self.attached, self.server_pid, self.cntr_pid] {
            let _ = k.exit(pid);
            let _ = k.reap(pid);
        }
        Ok(())
    }

    /// Detaches: [`teardown`], consuming the session.
    ///
    /// [`teardown`]: AttachSession::teardown
    pub fn detach(self) -> SysResult<()> {
        self.teardown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_engine::image::ImageBuilder;
    use cntr_engine::runtime::boot_host;
    use cntr_engine::{EngineKind, Registry};
    use cntr_types::SimClock;

    fn host_with_tools() -> Kernel {
        let k = boot_host(SimClock::new());
        for tool in [
            "ls", "cat", "ps", "gdb", "strace", "env", "stat", "tee", "hostname",
        ] {
            let path = format!("/usr/bin/{tool}");
            let fd = k
                .open(Pid::INIT, &path, OpenFlags::create(), Mode::RWXR_XR_X)
                .unwrap();
            k.write_fd(Pid::INIT, fd, b"HOST-TOOL").unwrap();
            k.close(Pid::INIT, fd).unwrap();
            k.chmod(Pid::INIT, &path, Mode::RWXR_XR_X).unwrap();
        }
        k.setenv(Pid::INIT, "PATH", "/usr/bin:/bin").unwrap();
        k
    }

    fn slim_mysql() -> Arc<cntr_engine::Image> {
        // The slim image: the app and its config, no tools at all.
        ImageBuilder::new("mysql", "slim")
            .layer("mysql-app")
            .binary("/usr/sbin/mysqld", 40_000_000, &[])
            .text("/etc/my.cnf", "[mysqld]\nmax_connections=100\n")
            .text(
                "/etc/passwd",
                "root:x:0:0::/:/bin/sh\nmysql:x:999:999::/var/lib/mysql:\n",
            )
            .text("/etc/hostname", "db\n")
            .dir("/var/lib/mysql")
            .env("MYSQL_DATABASE", "prod")
            .entrypoint("/usr/sbin/mysqld")
            .build()
    }

    fn setup() -> (Kernel, ContainerRuntime) {
        let k = host_with_tools();
        let registry = Registry::new();
        registry.push(slim_mysql());
        registry.push(
            ImageBuilder::new("debug-tools", "latest")
                .layer("toolbox")
                .binary("/usr/bin/gdb", 80_000_000, &[])
                .binary("/usr/bin/strace", 2_000_000, &[])
                .binary("/usr/bin/ls", 150_000, &[])
                .binary("/usr/bin/cat", 50_000, &[])
                .binary("/usr/bin/ps", 120_000, &[])
                .env("PATH", "/usr/bin")
                .entrypoint("/usr/bin/gdb")
                .build(),
        );
        let rt = ContainerRuntime::new(EngineKind::Docker, k.clone(), registry);
        (k, rt)
    }

    #[test]
    fn host_to_container_attach_full_workflow() {
        let (k, rt) = setup();
        let c = rt.run("db", "mysql:slim").unwrap();
        // The slim container has NO tools.
        assert!(k.stat(c.pid, "/usr/bin/gdb").is_err());

        let cntr = Cntr::new(k.clone());
        let session = cntr
            .attach(c.pid, CntrOptions::default())
            .expect("attach succeeds");

        // Tools from the host are visible at / in the nested namespace.
        assert!(k.stat(session.attached, "/usr/bin/gdb").unwrap().is_file());
        // The application's filesystem is at /var/lib/cntr.
        assert!(k
            .stat(session.attached, "/var/lib/cntr/usr/sbin/mysqld")
            .unwrap()
            .is_file());
        assert!(k
            .stat(session.attached, "/var/lib/cntr/etc/my.cnf")
            .unwrap()
            .is_file());
        // The app's /proc is bound over the tools view: the container's
        // processes are visible.
        assert!(k
            .stat(session.attached, &format!("/proc/{}/status", c.pid))
            .is_ok());
        // Environment: app values kept, PATH from the host.
        assert_eq!(
            k.getenv(session.attached, "MYSQL_DATABASE")
                .unwrap()
                .as_deref(),
            Some("prod")
        );
        assert_eq!(
            k.getenv(session.attached, "PATH").unwrap().as_deref(),
            Some("/usr/bin:/bin")
        );
        // Credentials dropped to the container's bounding set.
        let creds = k.creds(session.attached).unwrap();
        assert!(!creds.caps.has(cntr_types::Capability::SysAdmin));
        assert!(creds.lsm_profile.is_some());
        // Same cgroup as the container.
        assert_eq!(
            k.proc_info(session.attached).unwrap().cgroup.0,
            session.context.cgroup
        );

        // The shell runs tools (loaded over CntrFS) against the app.
        let out = session.run("gdb -p 1");
        // Note: inside the container's pid namespace the app is still
        // /proc/<global pid> in our simulation; attach via the visible pid.
        let out2 = session.run(&format!("gdb -p {}", c.pid));
        assert!(
            out.contains("gdb") || out2.contains("Attaching"),
            "{out}{out2}"
        );
        let cat = session.run("cat /var/lib/cntr/etc/my.cnf");
        assert!(cat.contains("max_connections=100"));

        // The application container itself is untouched: no tools at its /.
        assert!(k.stat(c.pid, "/usr/bin/gdb").is_err());
        assert!(k.stat(c.pid, "/usr/sbin/mysqld").unwrap().is_file());

        session.detach().unwrap();
    }

    #[test]
    fn container_to_container_attach_uses_fat_image_tools() {
        let (k, rt) = setup();
        let app = rt.run("db", "mysql:slim").unwrap();
        let fat = rt.run("toolbox", "debug-tools:latest").unwrap();

        let cntr = Cntr::new(k.clone());
        let session = cntr
            .attach_with_engine(&rt, "db", Some("toolbox"), FuseConfig::optimized())
            .expect("attach with fat container");

        // Tools resolve from the FAT container's image, not the host:
        // /usr/bin/gdb exists (toolbox) and /usr/sbin/mysqld does not at /.
        assert!(k.stat(session.attached, "/usr/bin/gdb").unwrap().is_file());
        assert!(k.stat(session.attached, "/usr/sbin/mysqld").is_err());
        // The fat container's gdb is 80 MB; the host one is 9 bytes.
        assert_eq!(
            k.stat(session.attached, "/usr/bin/gdb").unwrap().size,
            80_000_000
        );
        // The app is reachable under /var/lib/cntr.
        assert!(k
            .stat(session.attached, "/var/lib/cntr/usr/sbin/mysqld")
            .unwrap()
            .is_file());
        // Fat container is unaffected by the attachment.
        assert!(k.stat(fat.pid, "/usr/bin/gdb").unwrap().is_file());
        assert!(k.stat(fat.pid, "/var/lib/cntr/usr/sbin/mysqld").is_err());
        let _ = app;
        session.detach().unwrap();
    }

    #[test]
    fn etc_files_bound_from_application() {
        let (k, rt) = setup();
        let c = rt.run("db", "mysql:slim").unwrap();
        let cntr = Cntr::new(k.clone());
        let session = cntr.attach(c.pid, CntrOptions::default()).unwrap();
        // /etc/passwd in the nested namespace is the app's, not the host's.
        let out = session.run("cat /etc/passwd");
        assert!(out.contains("mysql:x:999"), "{out}");
        session.detach().unwrap();
    }

    #[test]
    fn writes_through_var_lib_cntr_reach_the_app() {
        let (k, rt) = setup();
        let c = rt.run("db", "mysql:slim").unwrap();
        let cntr = Cntr::new(k.clone());
        let session = cntr.attach(c.pid, CntrOptions::default()).unwrap();
        // Edit the app's config in place (the §7 workflow).
        session.run("tee /var/lib/cntr/etc/my.cnf [mysqld] max_connections=500");
        // The application sees the new config immediately.
        let fd = k
            .open(c.pid, "/etc/my.cnf", OpenFlags::RDONLY, Mode::RW_R__R__)
            .unwrap();
        let mut buf = [0u8; 128];
        let n = k.read_fd(c.pid, fd, &mut buf).unwrap();
        let content = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(content.contains("max_connections=500"), "{content}");
        k.close(c.pid, fd).unwrap();
        session.detach().unwrap();
    }

    #[test]
    fn server_crash_yields_enotconn_in_nested_ns() {
        let (k, rt) = setup();
        let c = rt.run("db", "mysql:slim").unwrap();
        let cntr = Cntr::new(k.clone());
        let session = cntr.attach(c.pid, CntrOptions::default()).unwrap();
        assert!(k.stat(session.attached, "/usr/bin/gdb").is_ok());
        session.kill_server();
        // Uncached paths now fail with ENOTCONN; the app container is fine.
        assert_eq!(
            k.stat(session.attached, "/usr/bin/never-looked-up"),
            Err(Errno::ENOTCONN)
        );
        assert!(k.stat(c.pid, "/etc/my.cnf").is_ok());
    }

    #[test]
    fn nested_attach_cntrfs_over_cntrfs() {
        // Paper §7: "We plan to further extend our evaluation to include
        // the nested container design." Attach to the attached process.
        let (k, rt) = setup();
        let c = rt.run("db", "mysql:slim").unwrap();
        let cntr = Cntr::new(k.clone());
        let outer = cntr.attach(c.pid, CntrOptions::default()).unwrap();
        let inner = cntr
            .attach(outer.attached, CntrOptions::default())
            .expect("nested attach");
        // The inner session sees the outer session's world under
        // /var/lib/cntr: tools at /var/lib/cntr/usr/bin/gdb, and the app
        // two levels deep.
        assert!(k
            .stat(inner.attached, "/var/lib/cntr/usr/bin/gdb")
            .unwrap()
            .is_file());
        assert!(k
            .stat(inner.attached, "/var/lib/cntr/var/lib/cntr/usr/sbin/mysqld")
            .unwrap()
            .is_file());
        inner.detach().unwrap();
        outer.detach().unwrap();
    }

    #[test]
    fn socket_forwarding_through_session() {
        let (k, rt) = setup();
        let c = rt.run("db", "mysql:slim").unwrap();
        // An "X11 server" on the host.
        let x11 = k.bind_listener(Pid::INIT, "/run/x11.sock").unwrap();
        let cntr = Cntr::new(k.clone());
        let session = cntr.attach(c.pid, CntrOptions::default()).unwrap();
        // Forward /tmp/x11.sock (nested view) → host /run/x11.sock.
        let proxy = session
            .forward_socket("/var/lib/cntr/tmp/x11.sock", "/run/x11.sock")
            .unwrap();
        // The application connects to the socket inside its own container.
        let app_fd = k.connect(c.pid, "/tmp/x11.sock").unwrap();
        proxy.pump().unwrap();
        k.write_fd(c.pid, app_fd, b"DRAW").unwrap();
        session.pump_proxies().unwrap();
        let conn = k.accept(Pid::INIT, x11).unwrap();
        let mut buf = [0u8; 8];
        let n = k.read_fd(Pid::INIT, conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"DRAW");
        session.detach().unwrap();
    }
}
