//! The pseudo-TTY (paper §3.2.4, "Shell I/O").
//!
//! "For isolation and security reasons, CNTR prevents leaking the terminal
//! file descriptors of the host to a container by leveraging pseudo-TTYs —
//! the pseudo-TTY acts as a proxy between the interactive shell and the user
//! terminal device." The master side faces the user's terminal (on the
//! host); the slave side faces the shell inside the nested namespace. Each
//! direction is a kernel pipe.

use cntr_kernel::pipe::Pipe;
use cntr_types::{Errno, SysResult};
use obs::{LazyCounter, Subsystem};
use std::sync::Arc;

// Bytes dropped by direct `shell_write` callers when the output pipe was
// full (the event-loop path never drops: it parks the tail instead).
static OBS_TRUNCATED: LazyCounter = LazyCounter::new(Subsystem::Core, "core.pty.truncated-writes");

/// A master/slave pseudo-TTY pair.
pub struct Pty {
    /// User → shell (master writes, slave reads).
    input: Arc<Pipe>,
    /// Shell → user (slave writes, master reads).
    output: Arc<Pipe>,
}

impl Pty {
    /// Allocates a pty pair with generous buffers.
    pub fn new() -> Arc<Pty> {
        Arc::new(Pty {
            input: Pipe::with_capacity(64 * 1024),
            output: Pipe::with_capacity(1024 * 1024),
        })
    }

    /// Master side: the user types a line (a trailing newline is added if
    /// missing). Delivery is atomic: a line that does not currently fit
    /// is refused whole with `EAGAIN` rather than split — the shell
    /// side treats a buffer that runs dry mid-line as a complete line,
    /// so a partial write would corrupt the command stream. A line
    /// larger than the pipe itself can never fit and yields `EINVAL`.
    pub fn user_write_line(&self, line: &str) -> SysResult<()> {
        let mut bytes = line.as_bytes().to_vec();
        if !bytes.ends_with(b"\n") {
            bytes.push(b'\n');
        }
        if bytes.len() > self.input.capacity() {
            return Err(Errno::EINVAL);
        }
        if self.input.room() < bytes.len() {
            return Err(Errno::EAGAIN);
        }
        let mut written = 0;
        while written < bytes.len() {
            written += self.input.write(&bytes[written..])?;
        }
        Ok(())
    }

    /// Master side: drains everything the shell printed so far.
    pub fn user_read_all(&self) -> String {
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        while let Ok(n) = self.output.read(&mut buf) {
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        String::from_utf8_lossy(&out).to_string()
    }

    /// Slave side: the shell reads one line of input, if a complete line is
    /// buffered.
    pub fn shell_read_line(&self) -> SysResult<Option<String>> {
        // Peek by draining into a local buffer; lines are delivered whole
        // because user_write_line writes atomically within capacity.
        let mut out = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match self.input.read(&mut byte) {
                Ok(0) => {
                    return if out.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(String::from_utf8_lossy(&out).to_string()))
                    }
                }
                Ok(_) => {
                    if byte[0] == b'\n' {
                        return Ok(Some(String::from_utf8_lossy(&out).to_string()));
                    }
                    out.push(byte[0]);
                }
                Err(Errno::EAGAIN) if out.is_empty() => return Ok(None),
                Err(Errno::EAGAIN) => return Ok(Some(String::from_utf8_lossy(&out).to_string())),
                Err(e) => return Err(e),
            }
        }
    }

    /// Slave side: the shell prints output. Returns how many bytes were
    /// accepted; a full buffer yields a *short* write rather than an
    /// error. Callers that discard the return value lose the tail (like
    /// a real tty with no reader) — those dropped bytes are surfaced in
    /// the `core.pty.truncated-writes` counter. The attach plane's
    /// event loop instead keeps the tail and re-arms on writability,
    /// via [`shell_write_raw`](Pty::shell_write_raw).
    pub fn shell_write(&self, text: &str) -> SysResult<usize> {
        let bytes = text.as_bytes();
        let written = self.shell_write_raw(bytes)?;
        if written < bytes.len() {
            OBS_TRUNCATED.add((bytes.len() - written) as u64);
        }
        Ok(written)
    }

    /// Slave side, raw variant: writes as much as fits and returns the
    /// count without recording truncation — the caller owns the tail.
    pub fn shell_write_raw(&self, bytes: &[u8]) -> SysResult<usize> {
        let mut written = 0;
        while written < bytes.len() {
            match self.output.write(&bytes[written..]) {
                Ok(n) => written += n,
                Err(Errno::EAGAIN) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(written)
    }

    /// The user→shell pipe (the attach plane registers its read end).
    pub(crate) fn input_pipe(&self) -> &Arc<Pipe> {
        &self.input
    }

    /// The shell→user pipe (the attach plane registers its write end).
    pub(crate) fn output_pipe(&self) -> &Arc<Pipe> {
        &self.output
    }

    /// Hangs up the terminal (user disconnect).
    pub fn hangup(&self) {
        self.input.close_write();
        self.output.close_read();
    }

    /// True once the user side is gone.
    pub fn hung_up(&self) -> bool {
        self.input.write_closed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trip() {
        let pty = Pty::new();
        pty.user_write_line("ls /var/lib/cntr").unwrap();
        assert_eq!(
            pty.shell_read_line().unwrap().as_deref(),
            Some("ls /var/lib/cntr")
        );
        assert_eq!(pty.shell_read_line().unwrap(), None);
        pty.shell_write("bin etc usr\n").unwrap();
        assert_eq!(pty.user_read_all(), "bin etc usr\n");
        assert_eq!(pty.user_read_all(), "");
    }

    #[test]
    fn multiple_queued_lines() {
        let pty = Pty::new();
        pty.user_write_line("first").unwrap();
        pty.user_write_line("second").unwrap();
        assert_eq!(pty.shell_read_line().unwrap().as_deref(), Some("first"));
        assert_eq!(pty.shell_read_line().unwrap().as_deref(), Some("second"));
    }

    #[test]
    fn hangup_observed_by_shell() {
        let pty = Pty::new();
        pty.user_write_line("exit").unwrap();
        pty.hangup();
        assert!(pty.hung_up());
        assert_eq!(pty.shell_read_line().unwrap().as_deref(), Some("exit"));
    }
}
