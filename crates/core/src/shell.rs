//! The interactive shell started inside the nested namespace (step #4).
//!
//! "CNTR executes an interactive shell, within the nested namespace, that
//! the user can interact with. ... From the shell, or through the tools it
//! launches, the user can then access the application filesystem under
//! /var/lib/cntr and the tools filesystem in /" (paper §3.1).
//!
//! Tool binaries are resolved through `$PATH` (inherited from the *debug*
//! side, §3.2.3) and loaded with `exec` — i.e. read page by page through
//! CntrFS. The tool behaviours themselves are simulated: enough `ls`, `cat`,
//! `ps`, `gdb`, `strace` to demonstrate and test the paper's workflows
//! (debugging the app process, editing its config in place, inspecting its
//! `/proc`).

use crate::pty::Pty;
use cntr_kernel::vfs::Access;
use cntr_kernel::Kernel;
use cntr_types::{Errno, Mode, OpenFlags, Pid, SysResult};
use std::sync::Arc;

/// The shell bound to an attached process.
pub struct Shell {
    kernel: Kernel,
    pid: Pid,
    pty: Arc<Pty>,
}

impl Shell {
    /// Creates a shell running as `pid`, speaking over `pty`.
    pub fn new(kernel: Kernel, pid: Pid, pty: Arc<Pty>) -> Shell {
        Shell { kernel, pid, pty }
    }

    /// The process the shell runs as.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Executes one command line, returning its output (direct API; the
    /// pty-based loop uses this too).
    pub fn run(&self, line: &str) -> String {
        match self.eval(line) {
            Ok(out) => out,
            Err(e) => format!("sh: {e}\n"),
        }
    }

    /// Processes pending pty input: reads lines, executes them, writes
    /// output back. Returns the number of commands executed.
    pub fn pump(&self) -> usize {
        let mut executed = 0;
        while let Ok(Some(line)) = self.pty.shell_read_line() {
            let out = self.run(&line);
            let _ = self.pty.shell_write(&out);
            executed += 1;
        }
        executed
    }

    fn read_file(&self, path: &str) -> SysResult<Vec<u8>> {
        let fd = self
            .kernel
            .open(self.pid, path, OpenFlags::RDONLY, Mode::RW_R__R__)?;
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = self.kernel.read_fd(self.pid, fd, &mut buf)?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        self.kernel.close(self.pid, fd)?;
        Ok(out)
    }

    /// Resolves a tool name via `$PATH` and "executes" it: the binary is
    /// loaded (read through whatever filesystem serves it — CntrFS for fat
    /// tools), then its simulated behaviour runs.
    fn exec_tool(&self, name: &str, args: &[&str]) -> SysResult<String> {
        let path = if name.contains('/') {
            name.to_string()
        } else {
            let path_var = self
                .kernel
                .getenv(self.pid, "PATH")?
                .unwrap_or_else(|| "/usr/bin:/bin".to_string());
            let mut found = None;
            for dir in path_var.split(':').filter(|d| !d.is_empty()) {
                let candidate = format!("{dir}/{name}");
                if self.kernel.access(self.pid, &candidate, Access::X).is_ok() {
                    found = Some(candidate);
                    break;
                }
            }
            found.ok_or(Errno::ENOENT)?
        };
        // Load the binary (exec = mmap through the page cache).
        let image = self.kernel.exec_read(self.pid, &path)?;
        let _ = image;
        self.tool_behaviour(name.rsplit('/').next().unwrap_or(name), args)
    }

    /// The built-in behaviours of the simulated toolbox.
    fn tool_behaviour(&self, tool: &str, args: &[&str]) -> SysResult<String> {
        let k = &self.kernel;
        match tool {
            "ls" => {
                let path = args.first().copied().unwrap_or(".");
                let mut names: Vec<String> = k
                    .readdir(self.pid, path)?
                    .into_iter()
                    .map(|d| d.name)
                    .filter(|n| n != "." && n != "..")
                    .collect();
                names.sort();
                Ok(format!("{}\n", names.join(" ")))
            }
            "cat" => {
                let path = args.first().copied().ok_or(Errno::EINVAL)?;
                Ok(String::from_utf8_lossy(&self.read_file(path)?).to_string())
            }
            "ps" => {
                let mut out = String::from("PID CMD\n");
                for d in k.readdir(self.pid, "/proc")? {
                    if d.name.chars().all(|c| c.is_ascii_digit()) {
                        let status = self
                            .read_file(&format!("/proc/{}/cmdline", d.name))
                            .unwrap_or_default();
                        let cmd = String::from_utf8_lossy(&status);
                        let cmd = cmd.trim_end_matches('\0');
                        out.push_str(&format!("{} {}\n", d.name, cmd));
                    }
                }
                Ok(out)
            }
            "gdb" => {
                // `gdb -p <pid>`: attach to a process visible in /proc.
                let pid_arg = match args {
                    ["-p", p, ..] => p,
                    _ => return Ok("usage: gdb -p <pid>\n".to_string()),
                };
                let status = self.read_file(&format!("/proc/{pid_arg}/status"))?;
                let text = String::from_utf8_lossy(&status);
                let name = text
                    .lines()
                    .find_map(|l| l.strip_prefix("Name:\t"))
                    .unwrap_or("?");
                Ok(format!(
                    "GNU gdb (simulated)\nAttaching to process {pid_arg} ({name})... done\n(gdb) \n"
                ))
            }
            "strace" => {
                let pid_arg = match args {
                    ["-p", p, ..] => p,
                    _ => return Ok("usage: strace -p <pid>\n".to_string()),
                };
                self.read_file(&format!("/proc/{pid_arg}/status"))?;
                Ok(format!("strace: Process {pid_arg} attached\n"))
            }
            "stat" => {
                let path = args.first().copied().ok_or(Errno::EINVAL)?;
                let st = k.stat(self.pid, path)?;
                Ok(format!(
                    "File: {path}\nSize: {} Inode: {} Links: {} Mode: {}{}\nUid: {} Gid: {}\n",
                    st.size,
                    st.ino,
                    st.nlink,
                    st.ftype.ls_char(),
                    st.mode,
                    st.uid,
                    st.gid
                ))
            }
            "env" => {
                let info = k.proc_info(self.pid)?;
                let mut out = String::new();
                for (key, value) in info.env {
                    out.push_str(&format!("{key}={value}\n"));
                }
                Ok(out)
            }
            "hostname" => Ok(format!("{}\n", k.gethostname(self.pid)?)),
            "mount" => {
                let mut out = String::new();
                for (id, fstype) in k.mounts(self.pid)? {
                    out.push_str(&format!("{fstype} on {id} type {fstype}\n"));
                }
                Ok(out)
            }
            "tee" => {
                // `tee <file>` with input supplied as remaining args — the
                // "edit a config in place, then reload" workflow (§7).
                let path = args.first().copied().ok_or(Errno::EINVAL)?;
                let content = args[1..].join(" ");
                let fd = k.open(self.pid, path, OpenFlags::create(), Mode::RW_R__R__)?;
                let mut written = 0;
                let bytes = content.as_bytes();
                while written < bytes.len() {
                    written += k.write_fd(self.pid, fd, &bytes[written..])?;
                }
                k.close(self.pid, fd)?;
                Ok(format!("{content}\n"))
            }
            "touch" => {
                let path = args.first().copied().ok_or(Errno::EINVAL)?;
                let fd = k.open(
                    self.pid,
                    path,
                    OpenFlags::WRONLY.with(OpenFlags::CREAT),
                    Mode::RW_R__R__,
                )?;
                k.close(self.pid, fd)?;
                Ok(String::new())
            }
            other => Ok(format!("{other}: simulated tool executed\n")),
        }
    }

    fn eval(&self, line: &str) -> SysResult<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let (cmd, args) = parts.split_first().expect("non-empty checked");
        match *cmd {
            // Shell built-ins.
            "cd" => {
                let target = args.first().copied().unwrap_or("/");
                self.kernel.chdir(self.pid, target)?;
                Ok(String::new())
            }
            "pwd" => {
                let info = self.kernel.proc_info(self.pid)?;
                let _ = info;
                // The canonical cwd is tracked by the kernel.
                Ok(format!("{}\n", self.kernel.cwd_path(self.pid)?))
            }
            "echo" => Ok(format!("{}\n", args.join(" "))),
            "exit" => Ok(String::new()),
            // Everything else resolves through $PATH and executes.
            tool => match self.exec_tool(tool, args) {
                Ok(out) => Ok(out),
                Err(Errno::ENOENT) => Ok(format!("sh: {tool}: command not found\n")),
                Err(e) => Ok(format!("sh: {tool}: {e}\n")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_engine::runtime::boot_host;
    use cntr_types::SimClock;

    fn host_shell() -> (Kernel, Shell) {
        let k = boot_host(SimClock::new());
        // A toolbox on the host.
        for tool in ["ls", "cat", "ps", "gdb", "env", "hostname"] {
            let fd = k
                .open(
                    Pid::INIT,
                    &format!("/usr/bin/{tool}"),
                    OpenFlags::create(),
                    Mode::RWXR_XR_X,
                )
                .unwrap();
            k.write_fd(Pid::INIT, fd, b"ELF-SIM").unwrap();
            k.close(Pid::INIT, fd).unwrap();
            k.chmod(Pid::INIT, &format!("/usr/bin/{tool}"), Mode::RWXR_XR_X)
                .unwrap();
        }
        k.setenv(Pid::INIT, "PATH", "/usr/bin").unwrap();
        let pty = Pty::new();
        let shell = Shell::new(k.clone(), Pid::INIT, pty);
        (k, shell)
    }

    #[test]
    fn builtins_and_tools() {
        let (k, sh) = host_shell();
        assert_eq!(sh.run("echo hello world"), "hello world\n");
        assert!(sh.run("ls /").contains("usr"));
        let fd = k
            .open(Pid::INIT, "/etc/motd", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.write_fd(Pid::INIT, fd, b"welcome\n").unwrap();
        k.close(Pid::INIT, fd).unwrap();
        assert_eq!(sh.run("cat /etc/motd"), "welcome\n");
        assert!(sh.run("ps").contains("1 init"));
        assert!(sh.run("gdb -p 1").contains("Attaching to process 1 (init)"));
        assert_eq!(sh.run("hostname"), "host\n");
    }

    #[test]
    fn missing_tool_reports_not_found() {
        let (_k, sh) = host_shell();
        assert_eq!(sh.run("perf record"), "sh: perf: command not found\n");
    }

    #[test]
    fn cd_and_pwd() {
        let (k, sh) = host_shell();
        k.mkdir(Pid::INIT, "/work", Mode::RWXR_XR_X).unwrap();
        sh.run("cd /work");
        assert_eq!(sh.run("pwd"), "/work\n");
    }

    #[test]
    fn pty_pump_loop() {
        let (_k, sh) = host_shell();
        let pty = Arc::clone(&sh.pty);
        pty.user_write_line("echo over-the-pty").unwrap();
        pty.user_write_line("hostname").unwrap();
        assert_eq!(sh.pump(), 2);
        let out = pty.user_read_all();
        assert!(out.contains("over-the-pty"));
        assert!(out.contains("host"));
    }
}
