//! CNTR: lightweight OS containers via split images.
//!
//! This crate is the paper's primary contribution (§3): attach to a running
//! "slim" application container and expand it, at runtime, with the tools of
//! a "fat" container or of the host — without modifying the application, the
//! container manager, or the operating system.
//!
//! The four components match the paper's implementation section (§4):
//!
//! * [`attach`] — the container-engine logic: resolve the container, gather
//!   its context, build the **nested mount namespace** (CntrFS at `/`, the
//!   application's old root at `/var/lib/cntr`, the app's `/proc`, `/dev`
//!   and selected `/etc` files bound over the tools view), drop privileges,
//!   and start the interactive shell (paper: 1549 LoC),
//! * [`cntrfs`] — the CntrFS server: a FUSE passthrough filesystem that
//!   resolves inodes to paths *in the server's mount namespace* (host or fat
//!   container), with the open+stat hardlink detection the paper describes
//!   (paper: 1481 LoC),
//! * [`pty`] — the pseudo-TTY connecting the user's terminal to the shell
//!   (paper: 221 LoC),
//! * [`proxy`] — the Unix-socket forwarder with its epoll+splice event loop,
//!   enabling X11/D-Bus applications (paper: 400 LoC).
//!
//! [`context`] implements step #1's `/proc` inspection and [`shell`] the
//! interactive shell plus a toolbox of simulated debugging tools.
//! [`event_loop`] is the attach plane itself: the single epoll event loop
//! that multiplexes every session's proxies and ptys.

pub mod attach;
pub mod cntrfs;
pub mod context;
pub mod event_loop;
pub mod proxy;
pub mod pty;
pub mod shell;

pub use attach::{AttachSession, Cntr, CntrOptions, ToolsLocation};
pub use cntrfs::CntrfsServer;
pub use context::ContainerContext;
pub use event_loop::EventLoop;
pub use proxy::SocketProxy;
pub use pty::Pty;
pub use shell::Shell;
