//! Unix-socket forwarding (paper §3.2.4).
//!
//! A socket file served through CntrFS has different inode numbers than the
//! real socket, so "the kernel does not associate them with open sockets in
//! the system" — `connect(2)` through the FUSE view fails. CNTR therefore
//! runs a proxy: it listens on a socket *inside* the application container,
//! connects to the real server in the debug container or on the host, and
//! moves bytes with an epoll event loop and `splice`.
//!
//! [`SocketProxy`] is a thin handle: the actual accepting, splicing,
//! backpressure, and teardown live in the shared attach-plane
//! [`EventLoop`], which multiplexes every proxy (and pty) of a plane
//! through one epoll instance. A session-owned proxy joins its session's
//! loop via [`SocketProxy::on_plane`]; the standalone constructor keeps
//! the historical one-loop-per-proxy shape for direct use.

use crate::event_loop::{EventLoop, ProxyCore};
use cntr_kernel::Kernel;
use cntr_types::{Pid, SysResult};
use std::sync::Arc;

/// A bidirectional Unix-socket forwarder registered on an attach plane.
pub struct SocketProxy {
    plane: Arc<EventLoop>,
    core: Arc<ProxyCore>,
    /// Path the proxy listens on (inside the app container).
    pub listen_path: String,
    /// Path of the real server socket (in the server namespace).
    pub target_path: String,
}

impl SocketProxy {
    /// Binds `listen_path` in the proxy process's namespace and prepares to
    /// forward to `target_path` in the connect process's namespace, on a
    /// dedicated event loop owned by `proxy_pid`.
    pub fn new(
        kernel: Kernel,
        proxy_pid: Pid,
        connect_pid: Pid,
        listen_path: &str,
        target_path: &str,
    ) -> SysResult<Arc<SocketProxy>> {
        let plane = EventLoop::with_process(kernel, proxy_pid)?;
        SocketProxy::on_plane(&plane, proxy_pid, connect_pid, listen_path, target_path)
    }

    /// Registers a forwarder on an existing plane: the listener is bound
    /// in `bind_pid`'s mount namespace (so in-container clients resolve
    /// it) and its fd is moved into the plane process, which owns every
    /// endpoint.
    pub fn on_plane(
        plane: &Arc<EventLoop>,
        bind_pid: Pid,
        connect_pid: Pid,
        listen_path: &str,
        target_path: &str,
    ) -> SysResult<Arc<SocketProxy>> {
        let k = plane.kernel();
        let bound = k.bind_listener(bind_pid, listen_path)?;
        let listener_fd = if bind_pid == plane.pid() {
            bound
        } else {
            let moved = k.send_fd(bind_pid, bound, plane.pid())?;
            k.close(bind_pid, bound)?;
            moved
        };
        let core = plane.register_listener(listener_fd, connect_pid, target_path)?;
        Ok(Arc::new(SocketProxy {
            plane: Arc::clone(plane),
            core,
            listen_path: listen_path.to_string(),
            target_path: target_path.to_string(),
        }))
    }

    /// The event loop this proxy is registered on.
    pub fn plane(&self) -> &Arc<EventLoop> {
        &self.plane
    }

    /// Number of live forwarded connections.
    pub fn connections(&self) -> usize {
        self.core.live()
    }

    /// Connections accepted over the proxy's lifetime.
    pub fn accepted(&self) -> u64 {
        self.core.accepted()
    }

    /// Upstream dials that failed. Each failure closes only the affected
    /// client; the proxy keeps serving.
    pub fn dial_errors(&self) -> u64 {
        self.core.dial_errors()
    }

    /// One iteration of the plane's event loop. Returns progress made
    /// (across *all* endpoints of the plane, not just this proxy).
    pub fn pump(&self) -> SysResult<usize> {
        self.plane.poll_once()
    }

    /// Pumps until no more progress is made (quiesces in-flight data).
    pub fn pump_until_quiet(&self) -> SysResult<usize> {
        self.plane.pump_until_quiet()
    }

    /// Deregisters the proxy from its plane: the listener and every
    /// forwarded pair leave the epoll interest set and their fds close.
    pub fn unregister(&self) {
        self.plane.remove_proxy(&self.core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_engine::runtime::boot_host;
    use cntr_types::SimClock;

    #[test]
    fn forwards_both_directions() {
        let k = boot_host(SimClock::new());
        // The "X11 server" listens on the host.
        let x11 = k.bind_listener(Pid::INIT, "/run/x11.sock").unwrap();
        // The proxy process (stands in for the attached cntr process).
        let proxy_pid = k.fork(Pid::INIT).unwrap();
        let connect_pid = k.fork(Pid::INIT).unwrap();
        k.mkdir(Pid::INIT, "/app-run", cntr_types::Mode::RWXR_XR_X)
            .unwrap();
        let proxy = SocketProxy::new(
            k.clone(),
            proxy_pid,
            connect_pid,
            "/app-run/x11.sock",
            "/run/x11.sock",
        )
        .unwrap();

        // An application client connects to the proxied socket.
        let app = k.fork(Pid::INIT).unwrap();
        let client_fd = k.connect(app, "/app-run/x11.sock").unwrap();
        proxy.pump().unwrap();
        assert_eq!(proxy.connections(), 1);

        // App → X11 server.
        k.write_fd(app, client_fd, b"CreateWindow").unwrap();
        proxy.pump_until_quiet().unwrap();
        let server_conn = k.accept(Pid::INIT, x11).unwrap();
        let mut buf = [0u8; 32];
        let n = k.read_fd(Pid::INIT, server_conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"CreateWindow");

        // X11 server → app.
        k.write_fd(Pid::INIT, server_conn, b"Expose").unwrap();
        proxy.pump_until_quiet().unwrap();
        let n = k.read_fd(app, client_fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"Expose");
    }

    #[test]
    fn connect_refused_without_listener() {
        let k = boot_host(SimClock::new());
        let proxy_pid = k.fork(Pid::INIT).unwrap();
        let connect_pid = k.fork(Pid::INIT).unwrap();
        let proxy = SocketProxy::new(
            k.clone(),
            proxy_pid,
            connect_pid,
            "/run/dead.sock",
            "/run/nothing-there.sock",
        )
        .unwrap();
        let app = k.fork(Pid::INIT).unwrap();
        let fd = k.connect(app, "/run/dead.sock").unwrap();
        // The failed upstream dial is absorbed: the pump keeps running
        // (reporting only the accept as progress), the client is
        // closed, and the failure is counted.
        assert_eq!(proxy.pump().unwrap(), 1);
        assert_eq!(proxy.connections(), 0);
        assert_eq!(proxy.dial_errors(), 1);
        // The client observes the refusal as EOF (closed fd), not a
        // wedged connection.
        let mut buf = [0u8; 4];
        assert!(matches!(k.read_fd(app, fd, &mut buf), Ok(0) | Err(_)));
        // The listener endpoint itself survives the failure.
        assert_eq!(proxy.plane().endpoints(), 1);
    }

    #[test]
    fn upstream_dead_then_revived_mid_session() {
        let k = boot_host(SimClock::new());
        // Fork every participant BEFORE binding the upstream listener, so
        // closing the host fd really is the last reference.
        let proxy_pid = k.fork(Pid::INIT).unwrap();
        let connect_pid = k.fork(Pid::INIT).unwrap();
        let app = k.fork(Pid::INIT).unwrap();
        let srv = k.bind_listener(Pid::INIT, "/run/db.sock").unwrap();
        let proxy = SocketProxy::new(
            k.clone(),
            proxy_pid,
            connect_pid,
            "/run/app.sock",
            "/run/db.sock",
        )
        .unwrap();

        // A healthy session streams.
        let c1 = k.connect(app, "/run/app.sock").unwrap();
        proxy.pump().unwrap();
        k.write_fd(app, c1, b"before").unwrap();
        proxy.pump_until_quiet().unwrap();
        let s1 = k.accept(Pid::INIT, srv).unwrap();
        let mut buf = [0u8; 16];
        let n = k.read_fd(Pid::INIT, s1, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"before");

        // The upstream dies: its listener closes and unbinds.
        k.close(Pid::INIT, srv).unwrap();
        let c2 = k.connect(app, "/run/app.sock").unwrap();
        proxy.pump_until_quiet().unwrap();
        assert_eq!(proxy.dial_errors(), 1);
        let _ = c2;
        // The established session is NOT collateral damage.
        assert_eq!(proxy.connections(), 1);
        k.write_fd(Pid::INIT, s1, b"still-on").unwrap();
        proxy.pump_until_quiet().unwrap();
        let n = k.read_fd(app, c1, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"still-on");

        // The upstream revives (the stale socket file must go first).
        k.unlink(Pid::INIT, "/run/db.sock").unwrap();
        let srv2 = k.bind_listener(Pid::INIT, "/run/db.sock").unwrap();
        let c3 = k.connect(app, "/run/app.sock").unwrap();
        proxy.pump().unwrap();
        assert_eq!(proxy.connections(), 2);
        k.write_fd(app, c3, b"revived").unwrap();
        proxy.pump_until_quiet().unwrap();
        let s3 = k.accept(Pid::INIT, srv2).unwrap();
        let n = k.read_fd(Pid::INIT, s3, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"revived");
    }

    #[test]
    fn half_close_with_pending_server_data() {
        let k = boot_host(SimClock::new());
        let srv = k.bind_listener(Pid::INIT, "/run/svc.sock").unwrap();
        let proxy_pid = k.fork(Pid::INIT).unwrap();
        let connect_pid = k.fork(Pid::INIT).unwrap();
        let proxy = SocketProxy::new(
            k.clone(),
            proxy_pid,
            connect_pid,
            "/run/in.sock",
            "/run/svc.sock",
        )
        .unwrap();
        let app = k.fork(Pid::INIT).unwrap();
        let c = k.connect(app, "/run/in.sock").unwrap();
        proxy.pump().unwrap();
        k.write_fd(app, c, b"QUERY").unwrap();
        proxy.pump_until_quiet().unwrap();
        let s = k.accept(Pid::INIT, srv).unwrap();
        let mut buf = [0u8; 16];
        let n = k.read_fd(Pid::INIT, s, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"QUERY");

        // The server queues its answer, then the client half-closes.
        k.write_fd(Pid::INIT, s, b"ANSWER").unwrap();
        k.shutdown_write(app, c).unwrap();
        proxy.pump_until_quiet().unwrap();
        // Forward direction: the server sees EOF after draining.
        assert_eq!(k.read_fd(Pid::INIT, s, &mut buf), Ok(0));
        // Reverse direction survived the half-close: the pending answer
        // still reaches the client.
        let n = k.read_fd(app, c, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"ANSWER");
        assert_eq!(proxy.connections(), 1, "pair lives until both drain");

        // Now the server closes too: the pair is torn down fully.
        k.close(Pid::INIT, s).unwrap();
        proxy.pump_until_quiet().unwrap();
        assert_eq!(k.read_fd(app, c, &mut buf), Ok(0));
        proxy.pump_until_quiet().unwrap();
        assert_eq!(proxy.connections(), 0);
    }

    #[test]
    fn connect_close_cycles_stay_bounded() {
        let k = boot_host(SimClock::new());
        let srv = k.bind_listener(Pid::INIT, "/run/cycle.sock").unwrap();
        let proxy_pid = k.fork(Pid::INIT).unwrap();
        let connect_pid = k.fork(Pid::INIT).unwrap();
        let proxy = SocketProxy::new(
            k.clone(),
            proxy_pid,
            connect_pid,
            "/run/cycle-in.sock",
            "/run/cycle.sock",
        )
        .unwrap();
        let app = k.fork(Pid::INIT).unwrap();
        for i in 0..64u32 {
            let c = k.connect(app, "/run/cycle-in.sock").unwrap();
            proxy.pump().unwrap();
            assert_eq!(proxy.connections(), 1, "cycle {i}");
            k.write_fd(app, c, b"ping").unwrap();
            proxy.pump_until_quiet().unwrap();
            let s = k.accept(Pid::INIT, srv).unwrap();
            let mut buf = [0u8; 8];
            assert_eq!(k.read_fd(Pid::INIT, s, &mut buf).unwrap(), 4);
            // Both application ends close; the loop must fully reclaim
            // the pair.
            k.close(Pid::INIT, s).unwrap();
            k.close(app, c).unwrap();
            proxy.pump_until_quiet().unwrap();
            assert_eq!(proxy.connections(), 0, "cycle {i}");
        }
        assert_eq!(proxy.accepted(), 64);
        // No leaked endpoints and no leaked epoll interest: just the
        // listener remains, regardless of how many pairs came and went.
        assert_eq!(proxy.plane().endpoints(), 1);
        assert_eq!(proxy.plane().interest_len().unwrap(), 1);
        // Fresh connections still work after all that churn.
        let _c = k.connect(app, "/run/cycle-in.sock").unwrap();
        proxy.pump().unwrap();
        assert_eq!(proxy.connections(), 1);
    }

    #[test]
    fn stalled_reader_parks_only_its_own_direction() {
        let k = boot_host(SimClock::new());
        let srv = k.bind_listener(Pid::INIT, "/run/slow.sock").unwrap();
        let proxy_pid = k.fork(Pid::INIT).unwrap();
        let connect_pid = k.fork(Pid::INIT).unwrap();
        let proxy = SocketProxy::new(
            k.clone(),
            proxy_pid,
            connect_pid,
            "/run/slow-in.sock",
            "/run/slow.sock",
        )
        .unwrap();
        let app = k.fork(Pid::INIT).unwrap();
        let c = k.connect(app, "/run/slow-in.sock").unwrap();
        proxy.pump().unwrap();
        let s = k.accept(Pid::INIT, srv).unwrap();

        // The server never reads. Push far more than one socket buffer
        // through: the proxy forwards what fits, parks, and resumes as
        // the reader drains — without dropping a byte.
        let payload: Vec<u8> = (0..400_000u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut received = Vec::new();
        let mut buf = vec![0u8; 64 * 1024];
        while sent < payload.len() || received.len() < payload.len() {
            if sent < payload.len() {
                if let Ok(n) = k.write_fd(app, c, &payload[sent..]) {
                    sent += n;
                }
            }
            proxy.pump_until_quiet().unwrap();
            // Drain slowly: one read per round trip.
            if let Ok(n) = k.read_fd(Pid::INIT, s, &mut buf) {
                received.extend_from_slice(&buf[..n]);
            }
        }
        assert_eq!(received, payload, "no bytes dropped or reordered");
    }
}
