//! Unix-socket forwarding (paper §3.2.4).
//!
//! A socket file served through CntrFS has different inode numbers than the
//! real socket, so "the kernel does not associate them with open sockets in
//! the system" — `connect(2)` through the FUSE view fails. CNTR therefore
//! runs a proxy: it listens on a socket *inside* the application container,
//! connects to the real server in the debug container or on the host, and
//! moves bytes with an epoll event loop and `splice`.

use cntr_kernel::epoll::Events;
use cntr_kernel::Kernel;
use cntr_types::{Pid, SysResult};
use parking_lot::Mutex;
use std::sync::Arc;

struct Forwarded {
    /// Fd of the accepted client connection (in the proxy process).
    client: u32,
    /// Fd of the upstream connection (passed into the proxy process).
    upstream: u32,
    closed: bool,
}

/// A bidirectional Unix-socket forwarder.
pub struct SocketProxy {
    kernel: Kernel,
    /// The proxy process (lives in the nested namespace, accepts there).
    proxy_pid: Pid,
    /// A process in the server namespace used to originate upstream
    /// connections (the CntrFS server process).
    connect_pid: Pid,
    /// Path the proxy listens on (inside the app container).
    pub listen_path: String,
    /// Path of the real server socket (in the server namespace).
    pub target_path: String,
    listener_fd: u32,
    epoll_fd: u32,
    conns: Mutex<Vec<Forwarded>>,
}

impl SocketProxy {
    /// Binds `listen_path` in the proxy process's namespace and prepares to
    /// forward to `target_path` in the connect process's namespace.
    pub fn new(
        kernel: Kernel,
        proxy_pid: Pid,
        connect_pid: Pid,
        listen_path: &str,
        target_path: &str,
    ) -> SysResult<Arc<SocketProxy>> {
        let listener_fd = kernel.bind_listener(proxy_pid, listen_path)?;
        let epoll_fd = kernel.epoll_create(proxy_pid)?;
        kernel.epoll_add(proxy_pid, epoll_fd, listener_fd, 0, Events::IN)?;
        Ok(Arc::new(SocketProxy {
            kernel,
            proxy_pid,
            connect_pid,
            listen_path: listen_path.to_string(),
            target_path: target_path.to_string(),
            listener_fd,
            epoll_fd,
            conns: Mutex::new_class("core.proxy.conns", Vec::new()),
        }))
    }

    /// Number of live forwarded connections.
    pub fn connections(&self) -> usize {
        self.conns.lock().iter().filter(|c| !c.closed).count()
    }

    /// One iteration of the event loop: accept pending connections, then
    /// splice every readable direction. Returns bytes moved.
    pub fn pump(&self) -> SysResult<usize> {
        let k = &self.kernel;
        // Accept new clients and dial upstream for each.
        while let Ok(client) = k.accept(self.proxy_pid, self.listener_fd) {
            let upstream_remote = k.connect(self.connect_pid, &self.target_path)?;
            // Bring the upstream fd into the proxy process (SCM_RIGHTS) so
            // one process owns both ends, as the real proxy does.
            let upstream = k.send_fd(self.connect_pid, upstream_remote, self.proxy_pid)?;
            k.close(self.connect_pid, upstream_remote)?;
            let token = 1 + self.conns.lock().len() as u64;
            let _ = k.epoll_add(self.proxy_pid, self.epoll_fd, client, token * 2, Events::IN);
            let _ = k.epoll_add(
                self.proxy_pid,
                self.epoll_fd,
                upstream,
                token * 2 + 1,
                Events::IN,
            );
            self.conns.lock().push(Forwarded {
                client,
                upstream,
                closed: false,
            });
        }

        // Splice data for every ready direction.
        let ready = k.epoll_wait(self.proxy_pid, self.epoll_fd)?;
        let mut moved = 0usize;
        let mut conns = self.conns.lock();
        for (token, ev) in ready {
            if token == 0 || !ev.readable {
                continue;
            }
            let idx = (token / 2 - 1) as usize;
            let Some(conn) = conns.get_mut(idx) else {
                continue;
            };
            if conn.closed {
                continue;
            }
            let (from, to) = if token % 2 == 0 {
                (conn.client, conn.upstream)
            } else {
                (conn.upstream, conn.client)
            };
            loop {
                match k.splice(self.proxy_pid, from, to, 64 * 1024) {
                    Ok(0) => {
                        // Orderly shutdown of one side: close the pair.
                        let _ = k.close(self.proxy_pid, conn.client);
                        let _ = k.close(self.proxy_pid, conn.upstream);
                        conn.closed = true;
                        break;
                    }
                    Ok(n) => moved += n,
                    Err(cntr_types::Errno::EAGAIN) => break,
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
        }
        Ok(moved)
    }

    /// Pumps until no more progress is made (quiesces in-flight data).
    pub fn pump_until_quiet(&self) -> SysResult<usize> {
        let mut total = 0;
        loop {
            let moved = self.pump()?;
            total += moved;
            if moved == 0 {
                return Ok(total);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_engine::runtime::boot_host;
    use cntr_types::SimClock;

    #[test]
    fn forwards_both_directions() {
        let k = boot_host(SimClock::new());
        // The "X11 server" listens on the host.
        let x11 = k.bind_listener(Pid::INIT, "/run/x11.sock").unwrap();
        // The proxy process (stands in for the attached cntr process).
        let proxy_pid = k.fork(Pid::INIT).unwrap();
        let connect_pid = k.fork(Pid::INIT).unwrap();
        k.mkdir(Pid::INIT, "/app-run", cntr_types::Mode::RWXR_XR_X)
            .unwrap();
        let proxy = SocketProxy::new(
            k.clone(),
            proxy_pid,
            connect_pid,
            "/app-run/x11.sock",
            "/run/x11.sock",
        )
        .unwrap();

        // An application client connects to the proxied socket.
        let app = k.fork(Pid::INIT).unwrap();
        let client_fd = k.connect(app, "/app-run/x11.sock").unwrap();
        proxy.pump().unwrap();
        assert_eq!(proxy.connections(), 1);

        // App → X11 server.
        k.write_fd(app, client_fd, b"CreateWindow").unwrap();
        proxy.pump_until_quiet().unwrap();
        let server_conn = k.accept(Pid::INIT, x11).unwrap();
        let mut buf = [0u8; 32];
        let n = k.read_fd(Pid::INIT, server_conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"CreateWindow");

        // X11 server → app.
        k.write_fd(Pid::INIT, server_conn, b"Expose").unwrap();
        proxy.pump_until_quiet().unwrap();
        let n = k.read_fd(app, client_fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"Expose");
    }

    #[test]
    fn connect_refused_without_listener() {
        let k = boot_host(SimClock::new());
        let proxy_pid = k.fork(Pid::INIT).unwrap();
        let connect_pid = k.fork(Pid::INIT).unwrap();
        let proxy = SocketProxy::new(
            k.clone(),
            proxy_pid,
            connect_pid,
            "/run/dead.sock",
            "/run/nothing-there.sock",
        )
        .unwrap();
        let app = k.fork(Pid::INIT).unwrap();
        let _fd = k.connect(app, "/run/dead.sock").unwrap();
        // Pump fails to dial upstream: the connection cannot be forwarded.
        assert!(proxy.pump().is_err());
    }
}
