//! Step #1: gather the container's execution context from `/proc`.
//!
//! "CNTR reads this information by inspecting the /proc filesystem of the
//! main process within the container" (paper §3.2.1). This module does the
//! same against the simulated kernel: it opens and parses
//! `/proc/<pid>/{status,environ,cgroup}` and `/proc/<pid>/ns/*` through
//! ordinary file reads, rather than using any privileged kernel API —
//! keeping CNTR portable across container engines.

use cntr_kernel::{Kernel, NamespaceId};
use cntr_types::{Errno, Mode, OpenFlags, Pid, SysResult};
use std::collections::BTreeMap;

/// Everything CNTR needs to know before attaching.
#[derive(Debug, Clone)]
pub struct ContainerContext {
    /// The container's main process.
    pub pid: Pid,
    /// Command name.
    pub name: String,
    /// Environment variables (heavily used for configuration and service
    /// discovery; paper cites the Twelve-Factor App).
    pub env: BTreeMap<String, String>,
    /// Cgroup path.
    pub cgroup: String,
    /// Mount namespace id.
    pub mnt_ns: NamespaceId,
    /// Pid namespace id.
    pub pid_ns: NamespaceId,
    /// Effective capability mask (hex, as printed by `/proc/.../status`).
    pub cap_eff: u64,
    /// Bounding capability mask.
    pub cap_bnd: u64,
    /// Uid of the main process.
    pub uid: u32,
    /// Gid of the main process.
    pub gid: u32,
}

fn read_proc_file(kernel: &Kernel, observer: Pid, path: &str) -> SysResult<Vec<u8>> {
    let fd = kernel.open(observer, path, OpenFlags::RDONLY, Mode::RW_R__R__)?;
    let mut out = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = kernel.read_fd(observer, fd, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    kernel.close(observer, fd)?;
    Ok(out)
}

fn parse_status_field<'a>(status: &'a str, key: &str) -> Option<&'a str> {
    status
        .lines()
        .find_map(|l| l.strip_prefix(key))
        .map(|v| v.trim())
}

fn parse_ns_id(content: &str) -> SysResult<NamespaceId> {
    // Format: "mnt:[4026531840]".
    let open = content.find('[').ok_or(Errno::EPROTO)?;
    let close = content.find(']').ok_or(Errno::EPROTO)?;
    content[open + 1..close]
        .parse::<u64>()
        .map(NamespaceId)
        .map_err(|_| Errno::EPROTO)
}

impl ContainerContext {
    /// Gathers the context of `target` by reading `/proc` as `observer`.
    ///
    /// `observer` must be able to see `target` in its `/proc` (i.e. share
    /// or parent the target's pid namespace view — on the host this is
    /// always true).
    pub fn gather(kernel: &Kernel, observer: Pid, target: Pid) -> SysResult<ContainerContext> {
        let base = format!("/proc/{target}");

        let status = String::from_utf8_lossy(&read_proc_file(
            kernel,
            observer,
            &format!("{base}/status"),
        )?)
        .to_string();
        let name = parse_status_field(&status, "Name:")
            .unwrap_or("unknown")
            .to_string();
        let uid = parse_status_field(&status, "Uid:")
            .and_then(|v| v.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let gid = parse_status_field(&status, "Gid:")
            .and_then(|v| v.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let cap_eff = parse_status_field(&status, "CapEff:")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .unwrap_or(0);
        let cap_bnd = parse_status_field(&status, "CapBnd:")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .unwrap_or(0);

        let environ = read_proc_file(kernel, observer, &format!("{base}/environ"))?;
        let mut env = BTreeMap::new();
        for chunk in environ.split(|&b| b == 0).filter(|c| !c.is_empty()) {
            let text = String::from_utf8_lossy(chunk);
            if let Some((k, v)) = text.split_once('=') {
                env.insert(k.to_string(), v.to_string());
            }
        }

        let cgroup_raw = String::from_utf8_lossy(&read_proc_file(
            kernel,
            observer,
            &format!("{base}/cgroup"),
        )?)
        .to_string();
        let cgroup = cgroup_raw
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("0::"))
            .unwrap_or("/")
            .to_string();

        let mnt_ns = parse_ns_id(&String::from_utf8_lossy(&read_proc_file(
            kernel,
            observer,
            &format!("{base}/ns/mnt"),
        )?))?;
        let pid_ns = parse_ns_id(&String::from_utf8_lossy(&read_proc_file(
            kernel,
            observer,
            &format!("{base}/ns/pid"),
        )?))?;

        Ok(ContainerContext {
            pid: target,
            name,
            env,
            cgroup,
            mnt_ns,
            pid_ns,
            cap_eff,
            cap_bnd,
            uid,
            gid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_engine::image::ImageBuilder;
    use cntr_engine::runtime::boot_host;
    use cntr_engine::{ContainerRuntime, EngineKind, Registry};
    use cntr_types::SimClock;

    #[test]
    fn gather_reads_container_context_via_proc() {
        let k = boot_host(SimClock::new());
        let registry = Registry::new();
        registry.push(
            ImageBuilder::new("redis", "7")
                .layer("base")
                .binary("/usr/bin/redis-server", 10_000_000, &[])
                .env("REDIS_PORT", "6379")
                .entrypoint("/usr/bin/redis-server")
                .build(),
        );
        let rt = ContainerRuntime::new(EngineKind::Docker, k.clone(), registry);
        let c = rt.run("cache", "redis:7").unwrap();

        let ctx = ContainerContext::gather(&k, Pid::INIT, c.pid).unwrap();
        assert_eq!(ctx.pid, c.pid);
        assert_eq!(ctx.name, "redis-server");
        assert_eq!(ctx.env.get("REDIS_PORT").map(String::as_str), Some("6379"));
        assert!(ctx.cgroup.starts_with("/docker/"));
        // The container has its own mount namespace, distinct from the host.
        let host = ContainerContext::gather(&k, Pid::INIT, Pid::INIT).unwrap();
        assert_ne!(ctx.mnt_ns, host.mnt_ns);
        assert_ne!(ctx.pid_ns, host.pid_ns);
        // The docker bounding set is a strict subset of the host's.
        assert!(ctx.cap_bnd != 0);
        assert!(ctx.cap_bnd & !host.cap_bnd == 0);
        assert!(ctx.cap_bnd != host.cap_bnd);
    }

    #[test]
    fn gather_missing_process_fails() {
        let k = boot_host(SimClock::new());
        assert!(ContainerContext::gather(&k, Pid::INIT, Pid(999)).is_err());
    }
}
