//! The CntrFS server: FUSE passthrough into another mount namespace.
//!
//! The server process lives on the host or inside the fat container (paper
//! §3.2.2) and serves every FUSE request with ordinary system calls in *its*
//! namespace — that indirection is the whole trick: a process in the slim
//! container's nested namespace transparently reads files that only exist in
//! the fat container.
//!
//! Faithful details from the paper:
//!
//! * inodes are resolved to **paths** and re-opened per lookup: "for every
//!   lookup, we need one `open()` system call to get a file handle to the
//!   inode, followed by a `stat()` system call to check if we already have
//!   looked up this inode in a different path due \[to\] hardlinks" (§5.2.2) —
//!   this server does exactly that, which is why CntrFS lookups are slower
//!   than native dcache hits (compilebench-read's 13.3×),
//! * ownership of created files is stamped with the caller's ids
//!   (`setfsuid`/`setfsgid` emulation), while mode-bit decisions run under
//!   the *server's* root identity — the cause of xfstests #375,
//! * inodes are not persistent: once forgotten they are gone, so file
//!   handles are not exportable (xfstests #426).

use cntr_fuse::proto::{Reply, Request, RequestCtx};
use cntr_fuse::server::FuseHandler;
use cntr_fuse::InitFlags;
use cntr_kernel::vfs::Whence;
use cntr_kernel::Kernel;
use cntr_types::{
    DevId, Errno, FileType, Gid, Ino, Mode, OpenFlags, Pid, SetAttr, Stat, SysResult, Uid,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct InodeEntry {
    path: String,
    backing: (DevId, Ino),
    nlookup: u64,
}

struct ServerState {
    inodes: HashMap<u64, InodeEntry>,
    by_backing: HashMap<(DevId, Ino), u64>,
    next_ino: u64,
    /// FUSE fh → (kernel fd in the server process, inode).
    handles: HashMap<u64, (u32, Ino)>,
    next_fh: u64,
}

/// The CntrFS passthrough server.
#[derive(Clone)]
pub struct CntrfsServer {
    kernel: Kernel,
    /// The server process — already `setns`ed into the fat container when
    /// tools come from an image rather than the host.
    server_pid: Pid,
    state: Arc<Mutex<ServerState>>,
}

impl CntrfsServer {
    /// Creates a server rooted at `server_pid`'s `/`.
    pub fn new(kernel: Kernel, server_pid: Pid) -> CntrfsServer {
        // A FUSE daemon holds an open file per active handle — including
        // handles pinned by deferred writeback — so it raises its fd limit,
        // as the real cntr does.
        if let Ok(mut limits) = kernel.rlimits(server_pid) {
            let _ = limits.set(
                cntr_types::RlimitKind::Nofile,
                cntr_types::Rlimit {
                    soft: 1 << 20,
                    hard: 1 << 20,
                },
            );
            let _ = kernel.set_rlimits(server_pid, limits);
        }
        let mut inodes = HashMap::new();
        inodes.insert(
            1,
            InodeEntry {
                path: "/".to_string(),
                backing: (DevId(0), Ino(0)),
                nlookup: 1,
            },
        );
        CntrfsServer {
            kernel,
            server_pid,
            state: Arc::new(Mutex::new_class(
                "core.cntrfs.state",
                ServerState {
                    inodes,
                    by_backing: HashMap::new(),
                    next_ino: 2,
                    handles: HashMap::new(),
                    next_fh: 1,
                },
            )),
        }
    }

    /// The process serving requests.
    pub fn server_pid(&self) -> Pid {
        self.server_pid
    }

    /// Number of live (remembered) inodes.
    pub fn live_inodes(&self) -> usize {
        self.state.lock().inodes.len()
    }

    fn path_of(&self, ino: Ino) -> SysResult<String> {
        self.state
            .lock()
            .inodes
            .get(&ino.raw())
            .map(|e| e.path.clone())
            .ok_or(Errno::ESTALE)
    }

    fn child_path(parent: &str, name: &str) -> String {
        if parent == "/" {
            format!("/{name}")
        } else {
            format!("{parent}/{name}")
        }
    }

    /// Registers (or refreshes) an inode for `path`, performing the paper's
    /// open+stat hardlink detection, and returns the stat with the FUSE
    /// inode number substituted.
    fn register(&self, path: &str, st: Stat) -> Stat {
        // The open() of the open+stat pair: take (and immediately release) a
        // handle so the cost profile matches the real CntrFS lookup path.
        if st.ftype == FileType::Regular {
            if let Ok(fd) =
                self.kernel
                    .open(self.server_pid, path, OpenFlags::RDONLY, Mode::RW_R__R__)
            {
                let _ = self.kernel.close(self.server_pid, fd);
            }
        }
        let mut state = self.state.lock();
        let backing = (st.dev, st.ino);
        let fuse_ino = match state.by_backing.get(&backing) {
            // Hardlink (or re-lookup): same backing inode, possibly via a
            // different path — reuse the FUSE inode.
            Some(&ino) => {
                let e = state.inodes.get_mut(&ino).expect("maps in sync");
                e.nlookup += 1;
                e.path = path.to_string();
                ino
            }
            None => {
                let ino = state.next_ino;
                state.next_ino += 1;
                state.inodes.insert(
                    ino,
                    InodeEntry {
                        path: path.to_string(),
                        backing,
                        nlookup: 1,
                    },
                );
                state.by_backing.insert(backing, ino);
                ino
            }
        };
        let mut out = st;
        out.ino = Ino(fuse_ino);
        out
    }

    fn fd_of(&self, fh: u64) -> SysResult<u32> {
        self.state
            .lock()
            .handles
            .get(&fh)
            .map(|&(fd, _)| fd)
            .ok_or(Errno::EBADF)
    }

    /// Any open kernel fd for `ino` — getattr uses it so attributes of
    /// open-but-unlinked files stay reachable (the real CntrFS keeps a file
    /// handle per inode for the same reason).
    fn any_fd_for(&self, ino: Ino) -> Option<u32> {
        self.state
            .lock()
            .handles
            .values()
            .find(|&&(_, i)| i == ino)
            .map(|&(fd, _)| fd)
    }

    fn forget_one(&self, ino: Ino, n: u64) {
        if ino.raw() == 1 {
            return;
        }
        let mut st = self.state.lock();
        if let Some(e) = st.inodes.get_mut(&ino.raw()) {
            e.nlookup = e.nlookup.saturating_sub(n);
            if e.nlookup == 0 {
                let backing = e.backing;
                st.inodes.remove(&ino.raw());
                st.by_backing.remove(&backing);
            }
        }
    }

    /// Stamps ownership on a freshly created node with the caller's ids —
    /// the `setfsuid`/`setfsgid` delegation of the paper. Runs as the
    /// server's root identity, so no setgid-stripping logic applies (#375).
    fn stamp_owner(&self, path: &str, ctx: RequestCtx) {
        if ctx.uid != 0 || ctx.gid != 0 {
            let _ = self
                .kernel
                .chown(self.server_pid, path, Uid(ctx.uid), Gid(ctx.gid));
        }
    }

    fn do_setattr(&self, path: &str, attr: &SetAttr) -> SysResult<Stat> {
        // Replayed as individual syscalls under the server's identity.
        if let Some(mode) = attr.mode {
            self.kernel.chmod(self.server_pid, path, mode)?;
        }
        match (attr.uid, attr.gid) {
            (Some(uid), Some(gid)) => self.kernel.chown(self.server_pid, path, uid, gid)?,
            (Some(uid), None) => {
                let st = self.kernel.stat(self.server_pid, path)?;
                self.kernel.chown(self.server_pid, path, uid, st.gid)?;
            }
            (None, Some(gid)) => {
                let st = self.kernel.stat(self.server_pid, path)?;
                self.kernel.chown(self.server_pid, path, st.uid, gid)?;
            }
            (None, None) => {}
        }
        if let Some(size) = attr.size {
            self.kernel.truncate(self.server_pid, path, size)?;
        }
        if attr.atime.is_some() || attr.mtime.is_some() {
            self.kernel
                .utimens(self.server_pid, path, attr.atime, attr.mtime)?;
        }
        self.kernel.lstat(self.server_pid, path)
    }

    fn lookup_impl(&self, parent: Ino, name: &str) -> SysResult<Stat> {
        let parent_path = self.path_of(parent)?;
        let path = Self::child_path(&parent_path, name);
        let st = self.kernel.lstat(self.server_pid, &path)?;
        Ok(self.register(&path, st))
    }

    fn rename_fixup(&self, old_path: &str, new_path: &str) {
        let mut st = self.state.lock();
        for e in st.inodes.values_mut() {
            if e.path == old_path {
                e.path = new_path.to_string();
            } else if let Some(rest) = e.path.strip_prefix(&format!("{old_path}/")) {
                e.path = format!("{new_path}/{rest}");
            }
        }
    }
}

fn ok_or<T>(r: SysResult<T>, f: impl FnOnce(T) -> Reply) -> Reply {
    match r {
        Ok(v) => f(v),
        Err(e) => Reply::Err(e),
    }
}

impl FuseHandler for CntrfsServer {
    fn handle(&self, req: Request) -> Reply {
        match req {
            Request::Init { wanted } => Reply::Init {
                // CntrFS supports every optimization (splice write included,
                // even though CNTR disables it by default).
                granted: wanted.intersect(InitFlags::all()),
            },
            Request::Lookup { parent, name, .. } => {
                ok_or(self.lookup_impl(parent, &name), Reply::Entry)
            }
            Request::Forget { ino, nlookup } => {
                self.forget_one(ino, nlookup);
                Reply::Ok
            }
            Request::BatchForget { items } => {
                for (ino, n) in items {
                    self.forget_one(ino, n);
                }
                Reply::Ok
            }
            Request::Getattr { ino } => {
                // Prefer fstat through an open handle: it survives unlink.
                if let Some(fd) = self.any_fd_for(ino) {
                    return match self.kernel.fstat(self.server_pid, fd) {
                        Ok(mut st) => {
                            st.ino = ino;
                            Reply::Attr(st)
                        }
                        Err(e) => Reply::Err(e),
                    };
                }
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                match self.kernel.lstat(self.server_pid, &path) {
                    Ok(mut st) => {
                        st.ino = ino;
                        Reply::Attr(st)
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Setattr { ino, attr, .. } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                match self.do_setattr(&path, &attr) {
                    Ok(mut st) => {
                        st.ino = ino;
                        Reply::Attr(st)
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Readlink { ino } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                ok_or(self.kernel.readlink(self.server_pid, &path), Reply::Target)
            }
            Request::Symlink {
                parent,
                name,
                target,
                ctx,
            } => {
                let parent_path = match self.path_of(parent) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                let path = Self::child_path(&parent_path, &name);
                match self.kernel.symlink(self.server_pid, &target, &path) {
                    Ok(()) => {
                        self.stamp_owner(&path, ctx);
                        ok_or(self.lookup_impl(parent, &name), Reply::Entry)
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Mknod {
                parent,
                name,
                ftype,
                mode,
                rdev,
                ctx,
            } => {
                let parent_path = match self.path_of(parent) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                let path = Self::child_path(&parent_path, &name);
                let res = if ftype == FileType::Regular {
                    self.kernel
                        .open(self.server_pid, &path, OpenFlags::create_new(), mode)
                        .and_then(|fd| self.kernel.close(self.server_pid, fd))
                        .and_then(|()| self.kernel.chmod(self.server_pid, &path, mode))
                } else {
                    self.kernel.mknod(self.server_pid, &path, ftype, mode, rdev)
                };
                match res {
                    Ok(()) => {
                        self.stamp_owner(&path, ctx);
                        ok_or(self.lookup_impl(parent, &name), Reply::Entry)
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Mkdir {
                parent,
                name,
                mode,
                ctx,
            } => {
                let parent_path = match self.path_of(parent) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                let path = Self::child_path(&parent_path, &name);
                match self.kernel.mkdir(self.server_pid, &path, mode) {
                    Ok(()) => {
                        self.stamp_owner(&path, ctx);
                        ok_or(self.lookup_impl(parent, &name), Reply::Entry)
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Unlink { parent, name } => {
                let parent_path = match self.path_of(parent) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                let path = Self::child_path(&parent_path, &name);
                ok_or(self.kernel.unlink(self.server_pid, &path), |()| Reply::Ok)
            }
            Request::Rmdir { parent, name } => {
                let parent_path = match self.path_of(parent) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                let path = Self::child_path(&parent_path, &name);
                ok_or(self.kernel.rmdir(self.server_pid, &path), |()| Reply::Ok)
            }
            Request::Rename {
                parent,
                name,
                newparent,
                newname,
                flags,
            } => {
                let (old, new) = match (self.path_of(parent), self.path_of(newparent)) {
                    (Ok(a), Ok(b)) => (Self::child_path(&a, &name), Self::child_path(&b, &newname)),
                    (Err(e), _) | (_, Err(e)) => return Reply::Err(e),
                };
                match self.kernel.rename(self.server_pid, &old, &new, flags) {
                    Ok(()) => {
                        self.rename_fixup(&old, &new);
                        Reply::Ok
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Link {
                ino,
                newparent,
                newname,
            } => {
                let (src, parent_path) = match (self.path_of(ino), self.path_of(newparent)) {
                    (Ok(a), Ok(b)) => (a, b),
                    (Err(e), _) | (_, Err(e)) => return Reply::Err(e),
                };
                let new = Self::child_path(&parent_path, &newname);
                match self.kernel.link(self.server_pid, &src, &new) {
                    Ok(()) => ok_or(self.lookup_impl(newparent, &newname), Reply::Entry),
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Open { ino, flags } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                match self
                    .kernel
                    .open(self.server_pid, &path, flags, Mode::RW_R__R__)
                {
                    Ok(fd) => {
                        let mut st = self.state.lock();
                        let fh = st.next_fh;
                        st.next_fh += 1;
                        st.handles.insert(fh, (fd, ino));
                        Reply::Opened {
                            fh,
                            keep_cache: true,
                        }
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Read {
                fh, offset, size, ..
            } => {
                let fd = match self.fd_of(fh) {
                    Ok(fd) => fd,
                    Err(e) => return Reply::Err(e),
                };
                let mut buf = vec![0u8; size as usize];
                match self.kernel.pread(self.server_pid, fd, offset, &mut buf) {
                    Ok(n) => {
                        buf.truncate(n);
                        Reply::Data(buf.into())
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Write {
                fh, offset, data, ..
            } => {
                let fd = match self.fd_of(fh) {
                    Ok(fd) => fd,
                    Err(e) => return Reply::Err(e),
                };
                ok_or(
                    self.kernel.pwrite(self.server_pid, fd, offset, &data),
                    |n| Reply::Written(n as u32),
                )
            }
            Request::Statfs => ok_or(self.kernel.statfs(self.server_pid, "/"), Reply::Statfs),
            Request::Release { fh, .. } => {
                let fd = {
                    let mut st = self.state.lock();
                    st.handles.remove(&fh)
                };
                match fd {
                    Some((fd, _)) => ok_or(self.kernel.close(self.server_pid, fd), |()| Reply::Ok),
                    None => Reply::Err(Errno::EBADF),
                }
            }
            Request::Fsync { fh, datasync, .. } => {
                let fd = match self.fd_of(fh) {
                    Ok(fd) => fd,
                    Err(e) => return Reply::Err(e),
                };
                // CNTR's delayed sync (§3.3): under the writeback cache a
                // datasync is handed to background writeback without a
                // durability barrier — "sacrific[ing] write consistency for
                // performance". A full fsync is honoured — and costs two
                // barriers through FUSE (the data pass, then the metadata /
                // parent-directory pass), which is why sync-per-operation
                // workloads like SQLite see ~2× on CntrFS (§5.2.2).
                let r = if datasync {
                    self.kernel.fsync_relaxed(self.server_pid, fd)
                } else {
                    self.kernel
                        .fsync(self.server_pid, fd, true)
                        .and_then(|()| self.kernel.fsync(self.server_pid, fd, false))
                };
                ok_or(r, |()| Reply::Ok)
            }
            Request::Readdir { ino } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                match self.kernel.readdir(self.server_pid, &path) {
                    Ok(entries) => Reply::Dirents(
                        entries
                            .into_iter()
                            .filter(|d| d.name != "." && d.name != "..")
                            .collect(),
                    ),
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Getxattr { ino, name } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                ok_or(
                    self.kernel.getxattr(self.server_pid, &path, &name),
                    Reply::Xattr,
                )
            }
            Request::Setxattr {
                ino,
                name,
                value,
                flags,
            } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                ok_or(
                    self.kernel
                        .setxattr(self.server_pid, &path, &name, &value, flags),
                    |()| Reply::Ok,
                )
            }
            Request::Listxattr { ino } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                ok_or(
                    self.kernel.listxattr(self.server_pid, &path),
                    Reply::XattrNames,
                )
            }
            Request::Removexattr { ino, name } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                ok_or(
                    self.kernel.removexattr(self.server_pid, &path, &name),
                    |()| Reply::Ok,
                )
            }
            Request::Access { ino, .. } => {
                let path = match self.path_of(ino) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                ok_or(self.kernel.lstat(self.server_pid, &path), |_| Reply::Ok)
            }
            Request::Create {
                parent,
                name,
                mode,
                flags,
                ctx,
            } => {
                let parent_path = match self.path_of(parent) {
                    Ok(p) => p,
                    Err(e) => return Reply::Err(e),
                };
                let path = Self::child_path(&parent_path, &name);
                match self
                    .kernel
                    .open(self.server_pid, &path, flags.with(OpenFlags::CREAT), mode)
                {
                    Ok(fd) => {
                        self.stamp_owner(&path, ctx);
                        let stat = match self.lookup_impl(parent, &name) {
                            Ok(st) => st,
                            Err(e) => return Reply::Err(e),
                        };
                        let ino = stat.ino;
                        let mut st = self.state.lock();
                        let fh = st.next_fh;
                        st.next_fh += 1;
                        st.handles.insert(fh, (fd, ino));
                        Reply::Created { stat, fh }
                    }
                    Err(e) => Reply::Err(e),
                }
            }
            Request::Fallocate {
                fh,
                offset,
                len,
                mode,
                ..
            } => {
                let fd = match self.fd_of(fh) {
                    Ok(fd) => fd,
                    Err(e) => return Reply::Err(e),
                };
                ok_or(
                    self.kernel
                        .fallocate(self.server_pid, fd, offset, len, mode),
                    |()| Reply::Ok,
                )
            }
            Request::Flush { fh, .. } => {
                // Seek-position reset is the closest flush-visible effect.
                if let Ok(fd) = self.fd_of(fh) {
                    let _ = self.kernel.lseek(self.server_pid, fd, 0, Whence::Cur);
                }
                Reply::Ok
            }
            Request::Destroy => Reply::Ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntr_engine::runtime::boot_host;
    use cntr_fs::{Filesystem, FsContext};
    use cntr_fuse::{FuseClientFs, FuseConfig, InlineTransport};
    use cntr_types::SimClock;

    fn setup() -> (Kernel, Arc<FuseClientFs>) {
        let k = boot_host(SimClock::new());
        // Host files the server will expose.
        k.mkdir(Pid::INIT, "/usr/share", Mode::RWXR_XR_X).unwrap();
        let fd = k
            .open(
                Pid::INIT,
                "/usr/bin/gdb",
                OpenFlags::create(),
                Mode::RWXR_XR_X,
            )
            .unwrap();
        k.write_fd(Pid::INIT, fd, b"GDB-BINARY").unwrap();
        k.close(Pid::INIT, fd).unwrap();
        k.chmod(Pid::INIT, "/usr/bin/gdb", Mode::RWXR_XR_X).unwrap();

        let server_pid = k.fork(Pid::INIT).unwrap();
        let server = CntrfsServer::new(k.clone(), server_pid);
        let transport = InlineTransport::new(server);
        let client = FuseClientFs::mount(
            DevId(7777),
            k.clock().clone(),
            k.cost(),
            FuseConfig::optimized(),
            transport,
        )
        .unwrap();
        (k, client)
    }

    #[test]
    fn lookup_and_read_through_passthrough() {
        let (_k, fs) = setup();
        let usr = fs.lookup(Ino(1), "usr").unwrap();
        let bin = fs.lookup(usr.ino, "bin").unwrap();
        let gdb = fs.lookup(bin.ino, "gdb").unwrap();
        assert_eq!(gdb.size, 10);
        let fh = fs.open(gdb.ino, OpenFlags::RDONLY).unwrap();
        let mut buf = [0u8; 16];
        let n = fs.read(gdb.ino, fh, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"GDB-BINARY");
        fs.release(gdb.ino, fh).unwrap();
    }

    #[test]
    fn writes_reach_the_backing_namespace() {
        let (k, fs) = setup();
        let etc = fs.lookup(Ino(1), "etc").unwrap();
        let st = fs
            .mknod(
                etc.ino,
                "written-via-fuse",
                FileType::Regular,
                Mode::RW_R__R__,
                0,
                &FsContext::root(),
            )
            .unwrap();
        let fh = fs.open(st.ino, OpenFlags::WRONLY).unwrap();
        fs.write(st.ino, fh, 0, b"hello host").unwrap();
        fs.release(st.ino, fh).unwrap();
        // Visible directly on the host.
        assert_eq!(k.stat(Pid::INIT, "/etc/written-via-fuse").unwrap().size, 10);
    }

    #[test]
    fn hardlinks_share_a_fuse_inode() {
        let (k, fs) = setup();
        let fd = k
            .open(Pid::INIT, "/etc/orig", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(Pid::INIT, fd).unwrap();
        k.link(Pid::INIT, "/etc/orig", "/etc/alias").unwrap();
        let etc = fs.lookup(Ino(1), "etc").unwrap();
        let a = fs.lookup(etc.ino, "orig").unwrap();
        let b = fs.lookup(etc.ino, "alias").unwrap();
        assert_eq!(a.ino, b.ino, "open+stat hardlink detection");
        assert_eq!(b.nlink, 2);
    }

    #[test]
    fn forget_drops_inodes_making_handles_stale() {
        let (_k, fs) = setup();
        let usr = fs.lookup(Ino(1), "usr").unwrap();
        let server_live = |fs: &Arc<FuseClientFs>| {
            // One root + whatever is remembered.
            let _ = fs;
        };
        server_live(&fs);
        fs.forget(usr.ino, 1);
        fs.flush_forgets();
        // A getattr for a forgotten inode is stale: the inode map no longer
        // knows it (ESTALE), which is also why name_to_handle_at cannot be
        // supported (xfstests #426).
        assert_eq!(fs.getattr(usr.ino), Err(Errno::ESTALE));
    }

    #[test]
    fn rename_fixes_descendant_paths() {
        let (k, fs) = setup();
        k.mkdir(Pid::INIT, "/usr/share/doc", Mode::RWXR_XR_X)
            .unwrap();
        let fd = k
            .open(
                Pid::INIT,
                "/usr/share/doc/readme",
                OpenFlags::create(),
                Mode::RW_R__R__,
            )
            .unwrap();
        k.write_fd(Pid::INIT, fd, b"docs").unwrap();
        k.close(Pid::INIT, fd).unwrap();

        let usr = fs.lookup(Ino(1), "usr").unwrap();
        let share = fs.lookup(usr.ino, "share").unwrap();
        let doc = fs.lookup(share.ino, "doc").unwrap();
        let readme = fs.lookup(doc.ino, "readme").unwrap();

        fs.rename(
            usr.ino,
            "share",
            usr.ino,
            "shared",
            cntr_types::RenameFlags::NONE,
        )
        .unwrap();
        // The remembered inode still resolves through its new path.
        let st = fs.getattr(readme.ino).unwrap();
        assert_eq!(st.size, 4);
        let fh = fs.open(readme.ino, OpenFlags::RDONLY).unwrap();
        let mut buf = [0u8; 8];
        let n = fs.read(readme.ino, fh, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"docs");
    }

    #[test]
    fn setgid_not_stripped_on_chmod_by_group_outsider() {
        // The xfstests #375 scenario, end to end: CntrFS replays chmod under
        // the server's root identity, so the setgid bit survives a chmod by
        // a caller outside the owning group — unlike a native filesystem.
        let (k, fs) = setup();
        let fd = k
            .open(Pid::INIT, "/etc/sg", OpenFlags::create(), Mode::RW_R__R__)
            .unwrap();
        k.close(Pid::INIT, fd).unwrap();
        k.chown(Pid::INIT, "/etc/sg", Uid(1000), Gid(2000)).unwrap();

        let etc = fs.lookup(Ino(1), "etc").unwrap();
        let sg = fs.lookup(etc.ino, "sg").unwrap();
        // Caller uid 1000 in group 3000 (not 2000), no CAP_FSETID.
        let ctx = FsContext::user(1000, 3000);
        let st = fs
            .setattr(sg.ino, &SetAttr::chmod(Mode::new(0o2755)), &ctx)
            .unwrap();
        assert!(
            st.mode.is_setgid(),
            "CntrFS misses the setgid-clearing rule (paper test #375)"
        );
    }

    #[test]
    fn stat_matches_backing_file() {
        let (k, fs) = setup();
        let usr = fs.lookup(Ino(1), "usr").unwrap();
        let bin = fs.lookup(usr.ino, "bin").unwrap();
        let gdb = fs.lookup(bin.ino, "gdb").unwrap();
        let native = k.stat(Pid::INIT, "/usr/bin/gdb").unwrap();
        assert_eq!(gdb.size, native.size);
        assert_eq!(gdb.mode, native.mode);
        assert_ne!(gdb.ino, native.ino, "FUSE inode numbering is private");
    }
}
