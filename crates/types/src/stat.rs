//! File metadata: type, permission mode, `stat`/`statfs` results, and the
//! `setattr` change-set used by both the VFS and the FUSE protocol.

use crate::ids::{DevId, Gid, Ino, Uid};
use crate::time::Timespec;
use core::fmt;

/// The type of a filesystem object (`S_IFMT` equivalents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
    /// FIFO (named pipe).
    Fifo,
    /// Unix domain socket.
    Socket,
    /// Character device.
    CharDevice,
    /// Block device.
    BlockDevice,
}

impl FileType {
    /// Single-character representation as in `ls -l`.
    pub const fn ls_char(self) -> char {
        match self {
            FileType::Regular => '-',
            FileType::Directory => 'd',
            FileType::Symlink => 'l',
            FileType::Fifo => 'p',
            FileType::Socket => 's',
            FileType::CharDevice => 'c',
            FileType::BlockDevice => 'b',
        }
    }

    /// The `S_IFMT` bits for this type (matching Linux).
    pub const fn mode_bits(self) -> u32 {
        match self {
            FileType::Fifo => 0o010000,
            FileType::CharDevice => 0o020000,
            FileType::Directory => 0o040000,
            FileType::BlockDevice => 0o060000,
            FileType::Regular => 0o100000,
            FileType::Symlink => 0o120000,
            FileType::Socket => 0o140000,
        }
    }
}

/// Permission bits plus setuid/setgid/sticky (the low 12 mode bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode(u16);

impl Mode {
    /// `S_ISUID`.
    pub const SETUID: u16 = 0o4000;
    /// `S_ISGID`.
    pub const SETGID: u16 = 0o2000;
    /// `S_ISVTX` (sticky).
    pub const STICKY: u16 = 0o1000;

    /// 0o755 — the usual directory / executable mode.
    pub const RWXR_XR_X: Mode = Mode(0o755);
    /// 0o644 — the usual file mode.
    pub const RW_R__R__: Mode = Mode(0o644);
    /// 0o777.
    pub const RWXRWXRWX: Mode = Mode(0o777);
    /// 0o600.
    pub const RW_______: Mode = Mode(0o600);

    /// Creates a mode from the low 12 bits of `raw` (higher bits are masked).
    pub const fn new(raw: u16) -> Mode {
        Mode(raw & 0o7777)
    }

    /// Raw bits.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// True if the setuid bit is set.
    pub const fn is_setuid(self) -> bool {
        self.0 & Self::SETUID != 0
    }

    /// True if the setgid bit is set.
    pub const fn is_setgid(self) -> bool {
        self.0 & Self::SETGID != 0
    }

    /// True if the sticky bit is set.
    pub const fn is_sticky(self) -> bool {
        self.0 & Self::STICKY != 0
    }

    /// Returns a copy with the setgid bit cleared.
    ///
    /// Linux clears setgid on `chmod` by a non-owner-group caller and on
    /// writes; CntrFS famously does *not* clear it in one ACL corner case
    /// (xfstests #375, one of the paper's four failures).
    #[must_use]
    pub const fn clear_setgid(self) -> Mode {
        Mode(self.0 & !Self::SETGID)
    }

    /// Returns a copy with the setuid and setgid bits cleared (write path).
    #[must_use]
    pub const fn clear_suid_sgid(self) -> Mode {
        Mode(self.0 & !(Self::SETUID | Self::SETGID))
    }

    /// Permission check triple for (user, group, other) classes.
    ///
    /// `class` 0 = owner, 1 = group, 2 = other. Bits are `rwx` (4, 2, 1).
    pub const fn class_bits(self, class: u8) -> u8 {
        ((self.0 >> ((2 - class as u16) * 3)) & 0o7) as u8
    }
}

impl Default for Mode {
    fn default() -> Mode {
        Mode::RW_R__R__
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

/// The result of `stat(2)` on the simulated VFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Filesystem instance the inode lives on.
    pub dev: DevId,
    /// Inode number.
    pub ino: Ino,
    /// Object type.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: Mode,
    /// Hard-link count.
    pub nlink: u32,
    /// Owner.
    pub uid: Uid,
    /// Group.
    pub gid: Gid,
    /// Device number for char/block device nodes, zero otherwise.
    pub rdev: u64,
    /// Size in bytes (for symlinks: length of the target path).
    pub size: u64,
    /// Allocated 512-byte blocks.
    pub blocks: u64,
    /// Preferred I/O block size.
    pub blksize: u32,
    /// Last access.
    pub atime: Timespec,
    /// Last data modification.
    pub mtime: Timespec,
    /// Last status change.
    pub ctime: Timespec,
}

impl Stat {
    /// True if this object is a directory.
    pub const fn is_dir(&self) -> bool {
        matches!(self.ftype, FileType::Directory)
    }

    /// True if this object is a regular file.
    pub const fn is_file(&self) -> bool {
        matches!(self.ftype, FileType::Regular)
    }

    /// True if this object is a symbolic link.
    pub const fn is_symlink(&self) -> bool {
        matches!(self.ftype, FileType::Symlink)
    }

    /// The full `st_mode` word (type bits | permission bits) as Linux encodes it.
    pub const fn st_mode(&self) -> u32 {
        self.ftype.mode_bits() | self.mode.bits() as u32
    }
}

/// The result of `statfs(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Statfs {
    /// Filesystem block size.
    pub bsize: u32,
    /// Total data blocks.
    pub blocks: u64,
    /// Free blocks.
    pub bfree: u64,
    /// Free blocks available to unprivileged users.
    pub bavail: u64,
    /// Total inodes.
    pub files: u64,
    /// Free inodes.
    pub ffree: u64,
    /// Maximum file name length.
    pub namelen: u32,
}

impl Statfs {
    /// Bytes of capacity.
    pub const fn total_bytes(&self) -> u64 {
        self.blocks * self.bsize as u64
    }

    /// Bytes free.
    pub const fn free_bytes(&self) -> u64 {
        self.bfree * self.bsize as u64
    }
}

/// A `setattr` change-set: every field is optional, mirroring both the
/// `FUSE_SETATTR` request and what `chmod`/`chown`/`truncate`/`utimens`
/// modify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SetAttr {
    /// New permission bits.
    pub mode: Option<Mode>,
    /// New owner.
    pub uid: Option<Uid>,
    /// New group.
    pub gid: Option<Gid>,
    /// New size (truncate/extend).
    pub size: Option<u64>,
    /// New access time.
    pub atime: Option<Timespec>,
    /// New modification time.
    pub mtime: Option<Timespec>,
}

impl SetAttr {
    /// A change-set that only truncates to `size`.
    pub const fn truncate(size: u64) -> SetAttr {
        SetAttr {
            mode: None,
            uid: None,
            gid: None,
            size: Some(size),
            atime: None,
            mtime: None,
        }
    }

    /// A change-set that only chmods to `mode`.
    pub const fn chmod(mode: Mode) -> SetAttr {
        SetAttr {
            mode: Some(mode),
            uid: None,
            gid: None,
            size: None,
            atime: None,
            mtime: None,
        }
    }

    /// A change-set that chowns to `uid`:`gid`.
    pub const fn chown(uid: Uid, gid: Gid) -> SetAttr {
        SetAttr {
            mode: None,
            uid: Some(uid),
            gid: Some(gid),
            size: None,
            atime: None,
            mtime: None,
        }
    }

    /// True if no field is set.
    pub const fn is_empty(&self) -> bool {
        self.mode.is_none()
            && self.uid.is_none()
            && self.gid.is_none()
            && self.size.is_none()
            && self.atime.is_none()
            && self.mtime.is_none()
    }
}

/// One directory entry as returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dirent {
    /// Inode number of the entry.
    pub ino: Ino,
    /// Entry name (no slashes, not `.` or `..` unless synthesized).
    pub name: String,
    /// Entry type.
    pub ftype: FileType,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_bits_and_classes() {
        let m = Mode::new(0o754);
        assert_eq!(m.class_bits(0), 0o7);
        assert_eq!(m.class_bits(1), 0o5);
        assert_eq!(m.class_bits(2), 0o4);
        assert_eq!(m.to_string(), "0754");
    }

    #[test]
    fn setgid_clearing() {
        let m = Mode::new(0o2755);
        assert!(m.is_setgid());
        assert!(!m.clear_setgid().is_setgid());
        let s = Mode::new(0o6711);
        let cleared = s.clear_suid_sgid();
        assert!(!cleared.is_setuid());
        assert!(!cleared.is_setgid());
        assert_eq!(cleared.bits(), 0o711);
    }

    #[test]
    fn mode_masks_high_bits() {
        assert_eq!(Mode::new(0o177777).bits(), 0o7777);
    }

    #[test]
    fn st_mode_matches_linux_encoding() {
        let st = Stat {
            dev: DevId(1),
            ino: Ino(2),
            ftype: FileType::Regular,
            mode: Mode::new(0o644),
            nlink: 1,
            uid: Uid(0),
            gid: Gid(0),
            rdev: 0,
            size: 0,
            blocks: 0,
            blksize: 4096,
            atime: Timespec::ZERO,
            mtime: Timespec::ZERO,
            ctime: Timespec::ZERO,
        };
        assert_eq!(st.st_mode(), 0o100644);
        assert!(st.is_file());
        assert!(!st.is_dir());
    }

    #[test]
    fn setattr_constructors() {
        assert_eq!(SetAttr::truncate(42).size, Some(42));
        assert!(SetAttr::default().is_empty());
        assert!(!SetAttr::chmod(Mode::RWXRWXRWX).is_empty());
        let c = SetAttr::chown(Uid(5), Gid(6));
        assert_eq!(c.uid, Some(Uid(5)));
        assert_eq!(c.gid, Some(Gid(6)));
    }

    #[test]
    fn filetype_ls_chars() {
        assert_eq!(FileType::Directory.ls_char(), 'd');
        assert_eq!(FileType::Symlink.ls_char(), 'l');
        assert_eq!(FileType::Regular.ls_char(), '-');
    }

    #[test]
    fn statfs_byte_math() {
        let s = Statfs {
            bsize: 4096,
            blocks: 1000,
            bfree: 250,
            bavail: 200,
            files: 100,
            ffree: 50,
            namelen: 255,
        };
        assert_eq!(s.total_bytes(), 4_096_000);
        assert_eq!(s.free_bytes(), 1_024_000);
    }
}
