//! Error numbers mirroring the Linux `errno` values used by the simulated OS.
//!
//! Every fallible operation in the workspace returns [`SysResult<T>`], i.e.
//! `Result<T, Errno>`, exactly like a Linux system call returns `-errno`.

use core::fmt;

/// Result type for every simulated system call.
pub type SysResult<T> = Result<T, Errno>;

/// A Linux-style error number.
///
/// The numeric values match x86-64 Linux so traces read naturally next to
/// `strace` output. Only the errnos actually produced by the simulation are
/// defined; the set covers the full filesystem API surface exercised by the
/// xfstests reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// No such process.
    ESRCH = 3,
    /// Interrupted system call.
    EINTR = 4,
    /// I/O error.
    EIO = 5,
    /// No such device or address.
    ENXIO = 6,
    /// Bad file descriptor.
    EBADF = 9,
    /// No child processes (`waitpid` with nothing waitable).
    ECHILD = 10,
    /// Try again (non-blocking operation would block).
    EAGAIN = 11,
    /// Out of memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address.
    EFAULT = 14,
    /// Device or resource busy.
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// Cross-device link.
    EXDEV = 18,
    /// No such device.
    ENODEV = 19,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// File table overflow.
    ENFILE = 23,
    /// Too many open files.
    EMFILE = 24,
    /// Inappropriate ioctl for device.
    ENOTTY = 25,
    /// Text file busy.
    ETXTBSY = 26,
    /// File too large.
    EFBIG = 27,
    /// No space left on device.
    ENOSPC = 28,
    /// Illegal seek.
    ESPIPE = 29,
    /// Read-only file system.
    EROFS = 30,
    /// Too many links.
    EMLINK = 31,
    /// Broken pipe.
    EPIPE = 32,
    /// Math argument out of domain.
    EDOM = 33,
    /// Result not representable.
    ERANGE = 34,
    /// Deadlock would occur.
    EDEADLK = 35,
    /// File name too long.
    ENAMETOOLONG = 36,
    /// No record locks available.
    ENOLCK = 37,
    /// Function not implemented.
    ENOSYS = 38,
    /// Directory not empty.
    ENOTEMPTY = 39,
    /// Too many symbolic links encountered.
    ELOOP = 40,
    /// No data available (also: no such xattr).
    ENODATA = 61,
    /// Protocol error.
    EPROTO = 71,
    /// Value too large for defined data type.
    EOVERFLOW = 75,
    /// Invalid exchange: file handle is stale or not exportable.
    EBADFD = 77,
    /// Socket operation on non-socket.
    ENOTSOCK = 88,
    /// Operation not supported.
    EOPNOTSUPP = 95,
    /// Address already in use.
    EADDRINUSE = 98,
    /// Cannot assign requested address.
    EADDRNOTAVAIL = 99,
    /// Software caused connection abort.
    ECONNABORTED = 103,
    /// Connection reset by peer.
    ECONNRESET = 104,
    /// No buffer space available.
    ENOBUFS = 105,
    /// Transport endpoint is already connected.
    EISCONN = 106,
    /// Transport endpoint is not connected (FUSE server gone).
    ENOTCONN = 107,
    /// Connection refused.
    ECONNREFUSED = 111,
    /// Operation now in progress.
    EINPROGRESS = 115,
    /// Stale file handle.
    ESTALE = 116,
}

impl Errno {
    /// Returns the numeric errno value (positive, as in `errno.h`).
    pub const fn as_i32(self) -> i32 {
        self as i32
    }

    /// Returns the symbolic name, e.g. `"ENOENT"`.
    pub const fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EINTR => "EINTR",
            Errno::EIO => "EIO",
            Errno::ENXIO => "ENXIO",
            Errno::EBADF => "EBADF",
            Errno::ECHILD => "ECHILD",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EFAULT => "EFAULT",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::EXDEV => "EXDEV",
            Errno::ENODEV => "ENODEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EMFILE => "EMFILE",
            Errno::ENOTTY => "ENOTTY",
            Errno::ETXTBSY => "ETXTBSY",
            Errno::EFBIG => "EFBIG",
            Errno::ENOSPC => "ENOSPC",
            Errno::ESPIPE => "ESPIPE",
            Errno::EROFS => "EROFS",
            Errno::EMLINK => "EMLINK",
            Errno::EPIPE => "EPIPE",
            Errno::EDOM => "EDOM",
            Errno::ERANGE => "ERANGE",
            Errno::EDEADLK => "EDEADLK",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOLCK => "ENOLCK",
            Errno::ENOSYS => "ENOSYS",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::ELOOP => "ELOOP",
            Errno::ENODATA => "ENODATA",
            Errno::EPROTO => "EPROTO",
            Errno::EOVERFLOW => "EOVERFLOW",
            Errno::EBADFD => "EBADFD",
            Errno::ENOTSOCK => "ENOTSOCK",
            Errno::EOPNOTSUPP => "EOPNOTSUPP",
            Errno::EADDRINUSE => "EADDRINUSE",
            Errno::EADDRNOTAVAIL => "EADDRNOTAVAIL",
            Errno::ECONNABORTED => "ECONNABORTED",
            Errno::ECONNRESET => "ECONNRESET",
            Errno::ENOBUFS => "ENOBUFS",
            Errno::EISCONN => "EISCONN",
            Errno::ENOTCONN => "ENOTCONN",
            Errno::ECONNREFUSED => "ECONNREFUSED",
            Errno::EINPROGRESS => "EINPROGRESS",
            Errno::ESTALE => "ESTALE",
        }
    }

    /// Returns a short human-readable description, as `strerror(3)` would.
    pub const fn description(self) -> &'static str {
        match self {
            Errno::EPERM => "Operation not permitted",
            Errno::ENOENT => "No such file or directory",
            Errno::ESRCH => "No such process",
            Errno::EINTR => "Interrupted system call",
            Errno::EIO => "Input/output error",
            Errno::ENXIO => "No such device or address",
            Errno::EBADF => "Bad file descriptor",
            Errno::ECHILD => "No child processes",
            Errno::EAGAIN => "Resource temporarily unavailable",
            Errno::ENOMEM => "Cannot allocate memory",
            Errno::EACCES => "Permission denied",
            Errno::EFAULT => "Bad address",
            Errno::EBUSY => "Device or resource busy",
            Errno::EEXIST => "File exists",
            Errno::EXDEV => "Invalid cross-device link",
            Errno::ENODEV => "No such device",
            Errno::ENOTDIR => "Not a directory",
            Errno::EISDIR => "Is a directory",
            Errno::EINVAL => "Invalid argument",
            Errno::ENFILE => "Too many open files in system",
            Errno::EMFILE => "Too many open files",
            Errno::ENOTTY => "Inappropriate ioctl for device",
            Errno::ETXTBSY => "Text file busy",
            Errno::EFBIG => "File too large",
            Errno::ENOSPC => "No space left on device",
            Errno::ESPIPE => "Illegal seek",
            Errno::EROFS => "Read-only file system",
            Errno::EMLINK => "Too many links",
            Errno::EPIPE => "Broken pipe",
            Errno::EDOM => "Numerical argument out of domain",
            Errno::ERANGE => "Numerical result out of range",
            Errno::EDEADLK => "Resource deadlock avoided",
            Errno::ENAMETOOLONG => "File name too long",
            Errno::ENOLCK => "No locks available",
            Errno::ENOSYS => "Function not implemented",
            Errno::ENOTEMPTY => "Directory not empty",
            Errno::ELOOP => "Too many levels of symbolic links",
            Errno::ENODATA => "No data available",
            Errno::EPROTO => "Protocol error",
            Errno::EOVERFLOW => "Value too large for defined data type",
            Errno::EBADFD => "File descriptor in bad state",
            Errno::ENOTSOCK => "Socket operation on non-socket",
            Errno::EOPNOTSUPP => "Operation not supported",
            Errno::EADDRINUSE => "Address already in use",
            Errno::EADDRNOTAVAIL => "Cannot assign requested address",
            Errno::ECONNABORTED => "Software caused connection abort",
            Errno::ECONNRESET => "Connection reset by peer",
            Errno::ENOBUFS => "No buffer space available",
            Errno::EISCONN => "Transport endpoint is already connected",
            Errno::ENOTCONN => "Transport endpoint is not connected",
            Errno::ECONNREFUSED => "Connection refused",
            Errno::EINPROGRESS => "Operation now in progress",
            Errno::ESTALE => "Stale file handle",
        }
    }

    /// Looks an errno up by its numeric value.
    pub fn from_i32(v: i32) -> Option<Errno> {
        ALL.iter().copied().find(|e| e.as_i32() == v)
    }
}

/// Every defined errno, in ascending numeric order.
pub const ALL: &[Errno] = &[
    Errno::EPERM,
    Errno::ENOENT,
    Errno::ESRCH,
    Errno::EINTR,
    Errno::EIO,
    Errno::ENXIO,
    Errno::EBADF,
    Errno::ECHILD,
    Errno::EAGAIN,
    Errno::ENOMEM,
    Errno::EACCES,
    Errno::EFAULT,
    Errno::EBUSY,
    Errno::EEXIST,
    Errno::EXDEV,
    Errno::ENODEV,
    Errno::ENOTDIR,
    Errno::EISDIR,
    Errno::EINVAL,
    Errno::ENFILE,
    Errno::EMFILE,
    Errno::ENOTTY,
    Errno::ETXTBSY,
    Errno::EFBIG,
    Errno::ENOSPC,
    Errno::ESPIPE,
    Errno::EROFS,
    Errno::EMLINK,
    Errno::EPIPE,
    Errno::EDOM,
    Errno::ERANGE,
    Errno::EDEADLK,
    Errno::ENAMETOOLONG,
    Errno::ENOLCK,
    Errno::ENOSYS,
    Errno::ENOTEMPTY,
    Errno::ELOOP,
    Errno::ENODATA,
    Errno::EPROTO,
    Errno::EOVERFLOW,
    Errno::EBADFD,
    Errno::ENOTSOCK,
    Errno::EOPNOTSUPP,
    Errno::EADDRINUSE,
    Errno::EADDRNOTAVAIL,
    Errno::ECONNABORTED,
    Errno::ECONNRESET,
    Errno::ENOBUFS,
    Errno::EISCONN,
    Errno::ENOTCONN,
    Errno::ECONNREFUSED,
    Errno::EINPROGRESS,
    Errno::ESTALE,
];

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.description())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_values_match_linux() {
        assert_eq!(Errno::EPERM.as_i32(), 1);
        assert_eq!(Errno::ENOENT.as_i32(), 2);
        assert_eq!(Errno::EEXIST.as_i32(), 17);
        assert_eq!(Errno::EINVAL.as_i32(), 22);
        assert_eq!(Errno::ENOTEMPTY.as_i32(), 39);
        assert_eq!(Errno::ELOOP.as_i32(), 40);
        assert_eq!(Errno::ENOTCONN.as_i32(), 107);
    }

    #[test]
    fn roundtrip_from_i32() {
        for &e in ALL {
            assert_eq!(Errno::from_i32(e.as_i32()), Some(e));
        }
        assert_eq!(Errno::from_i32(0), None);
        assert_eq!(Errno::from_i32(-1), None);
        assert_eq!(Errno::from_i32(9999), None);
    }

    #[test]
    fn all_is_sorted_and_unique() {
        let mut prev = 0;
        for &e in ALL {
            assert!(e.as_i32() > prev, "{e} out of order");
            prev = e.as_i32();
        }
    }

    #[test]
    fn display_includes_name_and_description() {
        let s = Errno::ENOENT.to_string();
        assert!(s.contains("ENOENT"));
        assert!(s.contains("No such file or directory"));
    }
}
