//! Per-process resource limits.
//!
//! Only the limits the evaluation exercises are modelled. `RLIMIT_FSIZE`
//! matters for the paper: CntrFS replays file operations in the FUSE server
//! process, whose own `RLIMIT_FSIZE` is unset, so the *caller's* limit is not
//! enforced — xfstests #228, one of the four documented failures (§5.1).

use crate::errno::{Errno, SysResult};

/// Kinds of resource limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RlimitKind {
    /// Maximum file size a process may create (`RLIMIT_FSIZE`).
    Fsize,
    /// Maximum number of open file descriptors (`RLIMIT_NOFILE`).
    Nofile,
    /// Maximum number of processes (`RLIMIT_NPROC`).
    Nproc,
}

/// A soft/hard limit pair. `u64::MAX` encodes `RLIM_INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rlimit {
    /// Soft limit, enforced.
    pub soft: u64,
    /// Hard limit, ceiling for the soft limit.
    pub hard: u64,
}

/// `RLIM_INFINITY`.
pub const RLIM_INFINITY: u64 = u64::MAX;

impl Rlimit {
    /// An unlimited limit pair.
    pub const INFINITY: Rlimit = Rlimit {
        soft: RLIM_INFINITY,
        hard: RLIM_INFINITY,
    };

    /// True if the soft limit is infinite.
    pub const fn is_unlimited(self) -> bool {
        self.soft == RLIM_INFINITY
    }
}

/// The limits of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RlimitSet {
    fsize: Rlimit,
    nofile: Rlimit,
    nproc: Rlimit,
}

impl Default for RlimitSet {
    fn default() -> RlimitSet {
        RlimitSet {
            fsize: Rlimit::INFINITY,
            nofile: Rlimit {
                soft: 1024,
                hard: 1 << 20,
            },
            nproc: Rlimit {
                soft: 1 << 16,
                hard: 1 << 16,
            },
        }
    }
}

impl RlimitSet {
    /// Reads a limit (`getrlimit`).
    pub fn get(&self, kind: RlimitKind) -> Rlimit {
        match kind {
            RlimitKind::Fsize => self.fsize,
            RlimitKind::Nofile => self.nofile,
            RlimitKind::Nproc => self.nproc,
        }
    }

    /// Sets a limit (`setrlimit`): the soft limit may not exceed the hard
    /// limit, and the hard limit may never be raised (privilege checks are
    /// the kernel's job, not modelled here).
    pub fn set(&mut self, kind: RlimitKind, new: Rlimit) -> SysResult<()> {
        if new.soft > new.hard {
            return Err(Errno::EINVAL);
        }
        let slot = match kind {
            RlimitKind::Fsize => &mut self.fsize,
            RlimitKind::Nofile => &mut self.nofile,
            RlimitKind::Nproc => &mut self.nproc,
        };
        if new.hard > slot.hard {
            return Err(Errno::EPERM);
        }
        *slot = new;
        Ok(())
    }

    /// Checks whether a write extending a file to `new_size` violates
    /// `RLIMIT_FSIZE`. Returns `EFBIG` if it does, as Linux would (after
    /// also delivering `SIGXFSZ`, which the simulation folds into the error).
    pub fn check_fsize(&self, new_size: u64) -> SysResult<()> {
        if new_size > self.fsize.soft {
            Err(Errno::EFBIG)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fsize_is_unlimited() {
        let l = RlimitSet::default();
        assert!(l.get(RlimitKind::Fsize).is_unlimited());
        assert!(l.check_fsize(u64::MAX - 1).is_ok());
    }

    #[test]
    fn fsize_enforcement() {
        let mut l = RlimitSet::default();
        l.set(
            RlimitKind::Fsize,
            Rlimit {
                soft: 4096,
                hard: 8192,
            },
        )
        .unwrap();
        assert!(l.check_fsize(4096).is_ok());
        assert_eq!(l.check_fsize(4097), Err(Errno::EFBIG));
    }

    #[test]
    fn soft_may_not_exceed_hard() {
        let mut l = RlimitSet::default();
        let bad = Rlimit {
            soft: 100,
            hard: 50,
        };
        assert_eq!(l.set(RlimitKind::Fsize, bad), Err(Errno::EINVAL));
    }

    #[test]
    fn hard_limit_may_not_be_raised() {
        let mut l = RlimitSet::default();
        l.set(RlimitKind::Nofile, Rlimit { soft: 10, hard: 10 })
            .unwrap();
        let raise = Rlimit { soft: 10, hard: 20 };
        assert_eq!(l.set(RlimitKind::Nofile, raise), Err(Errno::EPERM));
    }
}
