//! Open flags and related syscall flag types.

use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// The access-mode portion of `open(2)` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// `O_RDONLY`
    ReadOnly,
    /// `O_WRONLY`
    WriteOnly,
    /// `O_RDWR`
    ReadWrite,
}

impl AccessMode {
    /// Whether this mode permits reading.
    pub const fn readable(self) -> bool {
        matches!(self, AccessMode::ReadOnly | AccessMode::ReadWrite)
    }

    /// Whether this mode permits writing.
    pub const fn writable(self) -> bool {
        matches!(self, AccessMode::WriteOnly | AccessMode::ReadWrite)
    }
}

/// `open(2)` flags for the simulated VFS.
///
/// Modelled as a bit set (values match Linux x86-64 where a counterpart
/// exists) plus the access mode. `O_DIRECT` matters for the paper: CntrFS
/// rejects it because direct I/O and `mmap` support are mutually exclusive in
/// FUSE and CNTR needs `mmap` to execute binaries (paper §5.1, failed test
/// #391).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpenFlags {
    /// Read/write access mode.
    pub mode: AccessMode,
    bits: u32,
}

impl OpenFlags {
    /// `O_CREAT`: create the file if it does not exist.
    pub const CREAT: u32 = 0o100;
    /// `O_EXCL`: with `O_CREAT`, fail if the file exists.
    pub const EXCL: u32 = 0o200;
    /// `O_TRUNC`: truncate to length 0 on open.
    pub const TRUNC: u32 = 0o1000;
    /// `O_APPEND`: all writes append.
    pub const APPEND: u32 = 0o2000;
    /// `O_NONBLOCK`: non-blocking I/O.
    pub const NONBLOCK: u32 = 0o4000;
    /// `O_SYNC`: synchronous writes.
    pub const SYNC: u32 = 0o4010000;
    /// `O_DIRECT`: bypass the page cache.
    pub const DIRECT: u32 = 0o40000;
    /// `O_DIRECTORY`: fail if the path is not a directory.
    pub const DIRECTORY: u32 = 0o200000;
    /// `O_NOFOLLOW`: fail if the final component is a symlink.
    pub const NOFOLLOW: u32 = 0o400000;
    /// `O_CLOEXEC`: close on exec.
    pub const CLOEXEC: u32 = 0o2000000;
    /// `O_TMPFILE`: create an unnamed temporary file.
    pub const TMPFILE: u32 = 0o20200000;

    /// All currently understood non-access-mode bits.
    pub const ALL_BITS: u32 = Self::CREAT
        | Self::EXCL
        | Self::TRUNC
        | Self::APPEND
        | Self::NONBLOCK
        | Self::SYNC
        | Self::DIRECT
        | Self::DIRECTORY
        | Self::NOFOLLOW
        | Self::CLOEXEC
        | Self::TMPFILE;

    /// Read-only, no extra bits — the most common open.
    pub const RDONLY: OpenFlags = OpenFlags {
        mode: AccessMode::ReadOnly,
        bits: 0,
    };

    /// Write-only, no extra bits.
    pub const WRONLY: OpenFlags = OpenFlags {
        mode: AccessMode::WriteOnly,
        bits: 0,
    };

    /// Read-write, no extra bits.
    pub const RDWR: OpenFlags = OpenFlags {
        mode: AccessMode::ReadWrite,
        bits: 0,
    };

    /// Creates flags from an access mode and raw bits.
    pub const fn new(mode: AccessMode, bits: u32) -> OpenFlags {
        OpenFlags { mode, bits }
    }

    /// Returns a copy with `extra` bits set.
    #[must_use]
    pub const fn with(self, extra: u32) -> OpenFlags {
        OpenFlags {
            mode: self.mode,
            bits: self.bits | extra,
        }
    }

    /// True if every bit in `bit` is set.
    pub const fn contains(self, bit: u32) -> bool {
        self.bits & bit == bit
    }

    /// The raw extra-flag bits.
    pub const fn bits(self) -> u32 {
        self.bits
    }

    /// Convenience: `O_WRONLY | O_CREAT | O_TRUNC` — "create/overwrite".
    pub const fn create() -> OpenFlags {
        OpenFlags::WRONLY.with(Self::CREAT | Self::TRUNC)
    }

    /// Convenience: `O_WRONLY | O_CREAT | O_EXCL` — "create new".
    pub const fn create_new() -> OpenFlags {
        OpenFlags::WRONLY.with(Self::CREAT | Self::EXCL)
    }

    /// Convenience: `O_WRONLY | O_CREAT | O_APPEND`.
    pub const fn append() -> OpenFlags {
        OpenFlags::WRONLY.with(Self::CREAT | Self::APPEND)
    }
}

impl BitOr<u32> for OpenFlags {
    type Output = OpenFlags;

    fn bitor(self, rhs: u32) -> OpenFlags {
        self.with(rhs)
    }
}

impl BitOrAssign<u32> for OpenFlags {
    fn bitor_assign(&mut self, rhs: u32) {
        self.bits |= rhs;
    }
}

impl fmt::Display for OpenFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = match self.mode {
            AccessMode::ReadOnly => "O_RDONLY",
            AccessMode::WriteOnly => "O_WRONLY",
            AccessMode::ReadWrite => "O_RDWR",
        };
        write!(f, "{m}")?;
        for (bit, name) in [
            (Self::CREAT, "O_CREAT"),
            (Self::EXCL, "O_EXCL"),
            (Self::TRUNC, "O_TRUNC"),
            (Self::APPEND, "O_APPEND"),
            (Self::NONBLOCK, "O_NONBLOCK"),
            (Self::SYNC, "O_SYNC"),
            (Self::DIRECT, "O_DIRECT"),
            (Self::DIRECTORY, "O_DIRECTORY"),
            (Self::NOFOLLOW, "O_NOFOLLOW"),
            (Self::CLOEXEC, "O_CLOEXEC"),
        ] {
            if self.contains(bit) {
                write!(f, "|{name}")?;
            }
        }
        Ok(())
    }
}

/// Flags for `renameat2(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RenameFlags {
    /// `RENAME_NOREPLACE`: fail with `EEXIST` if the target exists.
    pub noreplace: bool,
    /// `RENAME_EXCHANGE`: atomically swap source and target.
    pub exchange: bool,
}

impl RenameFlags {
    /// Plain `rename(2)` semantics.
    pub const NONE: RenameFlags = RenameFlags {
        noreplace: false,
        exchange: false,
    };

    /// `RENAME_NOREPLACE`.
    pub const NOREPLACE: RenameFlags = RenameFlags {
        noreplace: true,
        exchange: false,
    };

    /// `RENAME_EXCHANGE`.
    pub const EXCHANGE: RenameFlags = RenameFlags {
        noreplace: false,
        exchange: true,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_predicates() {
        assert!(AccessMode::ReadOnly.readable());
        assert!(!AccessMode::ReadOnly.writable());
        assert!(AccessMode::ReadWrite.readable());
        assert!(AccessMode::ReadWrite.writable());
        assert!(AccessMode::WriteOnly.writable());
    }

    #[test]
    fn flag_composition() {
        let f = OpenFlags::create();
        assert!(f.contains(OpenFlags::CREAT));
        assert!(f.contains(OpenFlags::TRUNC));
        assert!(!f.contains(OpenFlags::EXCL));
        assert_eq!(f.mode, AccessMode::WriteOnly);

        let g = OpenFlags::RDONLY | OpenFlags::DIRECT;
        assert!(g.contains(OpenFlags::DIRECT));
    }

    #[test]
    fn display_lists_bits() {
        let f = OpenFlags::RDWR.with(OpenFlags::APPEND | OpenFlags::SYNC);
        let s = f.to_string();
        assert!(s.contains("O_RDWR"));
        assert!(s.contains("O_APPEND"));
        assert!(s.contains("O_SYNC"));
    }

    #[test]
    fn bits_match_linux_values() {
        assert_eq!(OpenFlags::CREAT, 0o100);
        assert_eq!(OpenFlags::APPEND, 0o2000);
        assert_eq!(OpenFlags::DIRECT, 0o40000);
        assert_eq!(OpenFlags::CLOEXEC, 0o2000000);
    }
}
