//! Identifier newtypes: process ids, user/group ids, inode numbers, devices,
//! file descriptors.
//!
//! Newtypes prevent the classic bug class of passing a pid where an inode
//! number is expected; all of them are `Copy` and order like their inner
//! integer.

use core::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident($inner:ty)) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A process identifier in the simulated kernel.
    Pid(u32)
);
id_type!(
    /// A user identifier.
    Uid(u32)
);
id_type!(
    /// A group identifier.
    Gid(u32)
);
id_type!(
    /// An inode number, unique within one filesystem instance.
    Ino(u64)
);
id_type!(
    /// A device identifier (filesystem instance id / `st_dev`).
    DevId(u64)
);
id_type!(
    /// A per-process file descriptor.
    Fd(u32)
);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Returns true for uid 0.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl Gid {
    /// The root group.
    pub const ROOT: Gid = Gid(0);
}

impl Pid {
    /// The init process of the root pid namespace.
    pub const INIT: Pid = Pid(1);
}

impl Ino {
    /// The conventional root inode number (as in FUSE: `FUSE_ROOT_ID == 1`).
    pub const ROOT: Ino = Ino(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_do_not_mix() {
        // Compile-time property; here we just exercise accessors.
        let pid = Pid(42);
        let ino = Ino(42);
        assert_eq!(pid.raw(), 42u32);
        assert_eq!(ino.raw(), 42u64);
    }

    #[test]
    fn root_constants() {
        assert!(Uid::ROOT.is_root());
        assert!(!Uid(1000).is_root());
        assert_eq!(Pid::INIT, Pid(1));
        assert_eq!(Ino::ROOT, Ino(1));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Fd(3) < Fd(4));
        assert_eq!(Uid(1000).to_string(), "1000");
        assert_eq!(Ino::from(7u64), Ino(7));
    }
}
