//! The calibrated cost model behind every virtual-time experiment.
//!
//! The constants approximate the paper's testbed — an EC2 m4.xlarge (Xeon
//! E5-2686, 16 GB RAM, Linux 4.14) with a 100 GB EBS gp2 volume — at the
//! granularity that matters for the evaluation's *shape*: how expensive is a
//! FUSE round trip relative to a page-cache hit, a memcpy relative to a
//! splice, a disk op relative to everything else.
//!
//! Components charge these primitive costs to the shared [`crate::SimClock`];
//! higher-level costs (a FUSE request, a disk I/O) are composed in the crates
//! that own those mechanisms (`cntr-fuse`, `cntr-blockdev`).

/// Primitive cost constants (all nanoseconds unless stated otherwise).
///
/// A [`CostModel`] is deliberately plain data: ablation experiments construct
/// variants (e.g. "free context switches") to isolate one term's contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Kernel entry/exit for one system call.
    pub syscall_ns: u64,
    /// One-way context switch between the kernel and a userspace server
    /// (a FUSE round trip pays two of these, plus queueing).
    pub ctx_switch_ns: u64,
    /// Copying one byte between kernel and userspace (~6.6 GB/s).
    pub copy_byte_ns_x1000: u64,
    /// Remapping one page via `splice` instead of copying it.
    pub splice_page_ns: u64,
    /// Serving one 4 KiB page from the page cache.
    pub page_cache_hit_ns: u64,
    /// A dentry-cache (name lookup) hit.
    pub dcache_hit_ns: u64,
    /// Allocating/initializing an in-memory inode structure.
    pub inode_init_ns: u64,
    /// Per-request queueing/wakeup overhead on the FUSE device queue.
    pub queue_wakeup_ns: u64,
    /// Lock/synchronization overhead a FUSE worker pays per request when the
    /// server runs more than one thread (contention on shared fd/inode maps;
    /// drives Figure 4).
    pub mt_sync_ns: u64,
}

impl CostModel {
    /// The calibrated model used by all paper-figure reproductions.
    pub const fn calibrated() -> CostModel {
        CostModel {
            syscall_ns: 300,
            ctx_switch_ns: 1_500,
            copy_byte_ns_x1000: 150, // 0.15 ns/byte
            splice_page_ns: 150,
            page_cache_hit_ns: 400,
            dcache_hit_ns: 150,
            inode_init_ns: 500,
            queue_wakeup_ns: 700,
            mt_sync_ns: 260,
        }
    }

    /// Cost of copying `len` bytes.
    pub const fn copy(&self, len: u64) -> u64 {
        len * self.copy_byte_ns_x1000 / 1000
    }

    /// Cost of moving `len` bytes with splice (page remaps, no byte copies).
    pub const fn splice(&self, len: u64) -> u64 {
        let pages = len.div_ceil(PAGE_SIZE as u64);
        pages * self.splice_page_ns
    }

    /// Cost of serving `len` bytes from the page cache.
    pub const fn page_cache(&self, len: u64) -> u64 {
        let pages = len.div_ceil(PAGE_SIZE as u64);
        pages * self.page_cache_hit_ns
    }

    /// Cost of one full syscall (entry/exit only).
    pub const fn syscall(&self) -> u64 {
        self.syscall_ns
    }

    /// Cost of one kernel→server→kernel FUSE round trip, excluding payload
    /// transfer and server-side work.
    pub const fn fuse_round_trip(&self) -> u64 {
        2 * self.ctx_switch_ns + self.queue_wakeup_ns
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::calibrated()
    }
}

/// The simulated page size (4 KiB, as on x86-64).
pub const PAGE_SIZE: usize = 4096;

/// CPU-work costs for the compute-bound parts of the Phoronix workloads.
///
/// These are charged by the workload generators, not by the filesystem stack:
/// e.g. Gzip is bottlenecked on compression, not I/O, which is why Figure 2
/// shows no CntrFS overhead for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCosts {
    /// Gzip compression, per input byte (~45 MB/s on the paper's cores).
    pub gzip_byte_ns_x1000: u64,
    /// SQL row insert processing (parse + B-tree update), per row.
    pub sql_insert_ns: u64,
    /// HTTP request handling (parsing, routing), per request.
    pub http_request_ns: u64,
    /// Compiling one source file (compilebench "compile" stage), per file.
    pub compile_file_ns: u64,
}

impl CpuCosts {
    /// Calibrated CPU costs.
    pub const fn calibrated() -> CpuCosts {
        CpuCosts {
            gzip_byte_ns_x1000: 22_000, // 22 ns/byte ≈ 45 MB/s
            sql_insert_ns: 40_000,
            http_request_ns: 25_000,
            compile_file_ns: 900_000,
        }
    }

    /// Gzip cost for `len` input bytes.
    pub const fn gzip(&self, len: u64) -> u64 {
        len * self.gzip_byte_ns_x1000 / 1000
    }
}

impl Default for CpuCosts {
    fn default() -> CpuCosts {
        CpuCosts::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_scales_linearly() {
        let m = CostModel::calibrated();
        assert_eq!(m.copy(0), 0);
        assert_eq!(m.copy(1000), 150);
        assert_eq!(m.copy(2000), 2 * m.copy(1000));
    }

    #[test]
    fn splice_is_cheaper_than_copy_for_large_transfers() {
        let m = CostModel::calibrated();
        let len = 1 << 20; // 1 MiB
        assert!(m.splice(len) < m.copy(len) / 2);
    }

    #[test]
    fn splice_charges_whole_pages() {
        let m = CostModel::calibrated();
        assert_eq!(m.splice(1), m.splice_page_ns);
        assert_eq!(m.splice(PAGE_SIZE as u64), m.splice_page_ns);
        assert_eq!(m.splice(PAGE_SIZE as u64 + 1), 2 * m.splice_page_ns);
    }

    #[test]
    fn fuse_round_trip_dominates_page_cache_hit() {
        // The core asymmetry behind all of Figure 2: a cache hit must be far
        // cheaper than going to userspace and back.
        let m = CostModel::calibrated();
        assert!(m.fuse_round_trip() > 5 * m.page_cache_hit_ns);
    }

    #[test]
    fn gzip_slower_than_page_cache_reads() {
        // Guarantees Gzip stays compute-bound in the simulation (Figure 2
        // shows ~1.0x for gzip because compression dominates data access).
        let cpu = CpuCosts::calibrated();
        let m = CostModel::calibrated();
        let len = 1 << 20;
        assert!(cpu.gzip(len) > 10 * m.page_cache(len));
    }
}
