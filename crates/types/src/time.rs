//! Nanosecond-resolution timestamps for the simulated OS.

use core::fmt;
use core::ops::{Add, Sub};

/// A point in simulated time, expressed as nanoseconds since simulation boot.
///
/// Used both for file timestamps (`st_atime` et al.) and for the virtual
/// performance clock. The representation is a single `u64` of nanoseconds,
/// which covers ~584 years of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timespec {
    nanos: u64,
}

impl Timespec {
    /// The simulation epoch.
    pub const ZERO: Timespec = Timespec { nanos: 0 };

    /// Creates a timestamp from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Timespec {
        Timespec { nanos }
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Timespec {
        Timespec {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Creates a timestamp from microseconds.
    pub const fn from_micros(micros: u64) -> Timespec {
        Timespec {
            nanos: micros * 1_000,
        }
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_millis(millis: u64) -> Timespec {
        Timespec {
            nanos: millis * 1_000_000,
        }
    }

    /// Raw nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Whole seconds part.
    pub const fn secs(self) -> u64 {
        self.nanos / 1_000_000_000
    }

    /// Sub-second nanoseconds part.
    pub const fn subsec_nanos(self) -> u32 {
        (self.nanos % 1_000_000_000) as u32
    }

    /// Fractional seconds as `f64` (for reporting only; never for logic).
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Saturating subtraction: returns zero if `other` is later.
    pub const fn saturating_sub(self, other: Timespec) -> Timespec {
        Timespec {
            nanos: self.nanos.saturating_sub(other.nanos),
        }
    }

    /// Checked addition of a duration in nanoseconds.
    pub const fn saturating_add_nanos(self, nanos: u64) -> Timespec {
        Timespec {
            nanos: self.nanos.saturating_add(nanos),
        }
    }
}

impl Add for Timespec {
    type Output = Timespec;

    fn add(self, rhs: Timespec) -> Timespec {
        Timespec {
            nanos: self.nanos + rhs.nanos,
        }
    }
}

impl Sub for Timespec {
    type Output = Timespec;

    fn sub(self, rhs: Timespec) -> Timespec {
        Timespec {
            nanos: self.nanos - rhs.nanos,
        }
    }
}

impl fmt::Display for Timespec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:09}s", self.secs(), self.subsec_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Timespec::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Timespec::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Timespec::from_micros(7).as_nanos(), 7_000);
        let t = Timespec::from_nanos(1_500_000_001);
        assert_eq!(t.secs(), 1);
        assert_eq!(t.subsec_nanos(), 500_000_001);
    }

    #[test]
    fn arithmetic() {
        let a = Timespec::from_secs(3);
        let b = Timespec::from_secs(1);
        assert_eq!((a + b).secs(), 4);
        assert_eq!((a - b).secs(), 2);
        assert_eq!(b.saturating_sub(a), Timespec::ZERO);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            Timespec::from_nanos(1_000_000_042).to_string(),
            "1.000000042s"
        );
    }
}
