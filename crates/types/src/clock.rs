//! The virtual clock that all performance experiments run on.
//!
//! Absolute wall-clock numbers from the paper's EC2 testbed cannot be
//! reproduced on arbitrary hardware; *ratios* can. Every simulated operation
//! charges its cost to a [`SimClock`], making benchmark results deterministic
//! and comparable: the Figure 2/3/4 reproductions assert their shape in
//! ordinary `cargo test` runs.

use crate::time::Timespec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable, monotonically increasing virtual clock (nanoseconds).
///
/// Cloning is cheap and all clones observe the same time. The clock is
/// advanced explicitly by the component performing work; concurrent actors
/// use [`SimClock::advance`], which is atomic.
///
/// # Examples
///
/// ```
/// use cntr_types::SimClock;
///
/// let clock = SimClock::new();
/// clock.advance(1_500); // a context switch
/// assert_eq!(clock.now().as_nanos(), 1_500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> Timespec {
        Timespec::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Advances the clock by `nanos` and returns the new time.
    pub fn advance(&self, nanos: u64) -> Timespec {
        let new = self.nanos.fetch_add(nanos, Ordering::Relaxed) + nanos;
        Timespec::from_nanos(new)
    }

    /// Advances the clock to at least `target` (no-op if already past).
    ///
    /// Used by the block-device model: an I/O completing at an absolute time
    /// moves the clock forward to that completion time.
    pub fn advance_to(&self, target: Timespec) -> Timespec {
        let t = target.as_nanos();
        let mut cur = self.nanos.load(Ordering::Relaxed);
        while cur < t {
            match self
                .nanos
                .compare_exchange_weak(cur, t, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return target,
                Err(actual) => cur = actual,
            }
        }
        Timespec::from_nanos(cur)
    }

    /// Measures the virtual time consumed by `f`.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, Timespec) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }
}

/// A stopwatch over a [`SimClock`].
#[derive(Debug, Clone)]
pub struct SimStopwatch {
    clock: SimClock,
    start: Timespec,
}

impl SimStopwatch {
    /// Starts a stopwatch at the clock's current time.
    pub fn start(clock: &SimClock) -> SimStopwatch {
        SimStopwatch {
            clock: clock.clone(),
            start: clock.now(),
        }
    }

    /// Virtual time elapsed since start.
    pub fn elapsed(&self) -> Timespec {
        self.clock.now() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(100);
        assert_eq!(b.now().as_nanos(), 100);
        b.advance(50);
        assert_eq!(a.now().as_nanos(), 150);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::new();
        c.advance(1000);
        c.advance_to(Timespec::from_nanos(500)); // already past; no-op
        assert_eq!(c.now().as_nanos(), 1000);
        c.advance_to(Timespec::from_nanos(2000));
        assert_eq!(c.now().as_nanos(), 2000);
    }

    #[test]
    fn measure_reports_elapsed() {
        let c = SimClock::new();
        let (val, dt) = c.measure(|| {
            c.advance(42);
            "done"
        });
        assert_eq!(val, "done");
        assert_eq!(dt.as_nanos(), 42);
    }

    #[test]
    fn stopwatch() {
        let c = SimClock::new();
        let w = SimStopwatch::start(&c);
        c.advance(7);
        assert_eq!(w.elapsed().as_nanos(), 7);
    }

    #[test]
    fn concurrent_advance_sums() {
        let c = SimClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now().as_nanos(), 8000);
    }
}
