//! Shared OS-level types for the CNTR reproduction.
//!
//! This crate is the vocabulary of the whole workspace: error numbers,
//! identifier newtypes, `stat`-like metadata, open flags, timestamps, POSIX
//! capabilities, resource limits — and the **virtual clock / cost model** that
//! every performance experiment in the paper reproduction runs on.
//!
//! Nothing here touches the host operating system; all types describe the
//! *simulated* OS implemented by the sibling crates (`cntr-kernel`,
//! `cntr-fs`, `cntr-fuse`).

pub mod caps;
pub mod clock;
pub mod cost;
pub mod errno;
pub mod flags;
pub mod ids;
pub mod rlimit;
pub mod stat;
pub mod time;

pub use caps::{CapSet, Capability};
pub use clock::SimClock;
pub use cost::CostModel;
pub use errno::{Errno, SysResult};
pub use flags::{AccessMode, OpenFlags, RenameFlags};
pub use ids::{DevId, Fd, Gid, Ino, Pid, Uid};
pub use rlimit::{Rlimit, RlimitKind, RlimitSet};
pub use stat::{Dirent, FileType, Mode, SetAttr, Stat, Statfs};
pub use time::Timespec;
