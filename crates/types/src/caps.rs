//! POSIX capabilities for the simulated kernel.
//!
//! CNTR gathers the capability set of the target container and applies it to
//! the attached process so that tools never gain privileges beyond what the
//! container already had (paper §3.2.1 and §3.2.3).

use core::fmt;

/// A Linux capability bit. Only the capabilities the simulation checks are
/// modelled; numeric values match `linux/capability.h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Capability {
    /// Override file permission checks.
    DacOverride = 1,
    /// Read any file, search any directory.
    DacReadSearch = 2,
    /// Bypass ownership checks on operations like utimes.
    Fowner = 3,
    /// Don't clear setuid/setgid on file modification.
    Fsetid = 4,
    /// Send signals to arbitrary processes.
    Kill = 5,
    /// Change GID arbitrarily.
    Setgid = 6,
    /// Change UID arbitrarily.
    Setuid = 7,
    /// Create device nodes with `mknod`.
    Mknod = 27,
    /// Use `chroot(2)`.
    SysChroot = 18,
    /// Trace arbitrary processes.
    SysPtrace = 19,
    /// Administer the system: mount, setns into foreign namespaces, etc.
    SysAdmin = 21,
    /// Raise process priorities.
    SysNice = 23,
    /// Override resource limits.
    SysResource = 24,
    /// Configure network interfaces.
    NetAdmin = 12,
    /// Bind privileged ports.
    NetBindService = 10,
    /// Change file ownership.
    Chown = 0,
    /// Write audit records / modify audit config.
    AuditWrite = 29,
    /// Set file capabilities.
    Setfcap = 31,
}

/// Every modelled capability.
pub const ALL_CAPS: &[Capability] = &[
    Capability::Chown,
    Capability::DacOverride,
    Capability::DacReadSearch,
    Capability::Fowner,
    Capability::Fsetid,
    Capability::Kill,
    Capability::Setgid,
    Capability::Setuid,
    Capability::NetBindService,
    Capability::NetAdmin,
    Capability::SysChroot,
    Capability::SysPtrace,
    Capability::SysAdmin,
    Capability::SysNice,
    Capability::SysResource,
    Capability::Mknod,
    Capability::AuditWrite,
    Capability::Setfcap,
];

impl Capability {
    /// Canonical name, e.g. `"CAP_SYS_ADMIN"`.
    pub const fn name(self) -> &'static str {
        match self {
            Capability::Chown => "CAP_CHOWN",
            Capability::DacOverride => "CAP_DAC_OVERRIDE",
            Capability::DacReadSearch => "CAP_DAC_READ_SEARCH",
            Capability::Fowner => "CAP_FOWNER",
            Capability::Fsetid => "CAP_FSETID",
            Capability::Kill => "CAP_KILL",
            Capability::Setgid => "CAP_SETGID",
            Capability::Setuid => "CAP_SETUID",
            Capability::NetBindService => "CAP_NET_BIND_SERVICE",
            Capability::NetAdmin => "CAP_NET_ADMIN",
            Capability::SysChroot => "CAP_SYS_CHROOT",
            Capability::SysPtrace => "CAP_SYS_PTRACE",
            Capability::SysAdmin => "CAP_SYS_ADMIN",
            Capability::SysNice => "CAP_SYS_NICE",
            Capability::SysResource => "CAP_SYS_RESOURCE",
            Capability::Mknod => "CAP_MKNOD",
            Capability::AuditWrite => "CAP_AUDIT_WRITE",
            Capability::Setfcap => "CAP_SETFCAP",
        }
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of capabilities, stored as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapSet(u64);

impl CapSet {
    /// The empty set.
    pub const EMPTY: CapSet = CapSet(0);

    /// The full set of every modelled capability (what root in the initial
    /// user namespace holds).
    pub fn full() -> CapSet {
        let mut s = CapSet::EMPTY;
        for &c in ALL_CAPS {
            s.add(c);
        }
        s
    }

    /// The default Docker capability bounding set (a strict subset of full;
    /// notably *without* `CAP_SYS_ADMIN` and `CAP_SYS_PTRACE`).
    pub fn docker_default() -> CapSet {
        let mut s = CapSet::EMPTY;
        for c in [
            Capability::Chown,
            Capability::DacOverride,
            Capability::Fowner,
            Capability::Fsetid,
            Capability::Kill,
            Capability::Setgid,
            Capability::Setuid,
            Capability::NetBindService,
            Capability::SysChroot,
            Capability::Mknod,
            Capability::AuditWrite,
            Capability::Setfcap,
        ] {
            s.add(c);
        }
        s
    }

    /// Adds a capability.
    pub fn add(&mut self, c: Capability) {
        self.0 |= 1 << (c as u8);
    }

    /// Removes a capability.
    pub fn remove(&mut self, c: Capability) {
        self.0 &= !(1 << (c as u8));
    }

    /// Membership test.
    pub const fn has(self, c: Capability) -> bool {
        self.0 & (1 << (c as u8)) != 0
    }

    /// True if `self` is a subset of `other`.
    pub const fn subset_of(self, other: CapSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Set intersection — used when CNTR drops the attached process to the
    /// container's bounding set.
    #[must_use]
    pub const fn intersect(self, other: CapSet) -> CapSet {
        CapSet(self.0 & other.0)
    }

    /// Number of capabilities held.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no capability is held.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over held capabilities.
    pub fn iter(self) -> impl Iterator<Item = Capability> {
        ALL_CAPS.iter().copied().filter(move |&c| self.has(c))
    }

    /// The raw bit mask (what `/proc/<pid>/status` prints as `CapEff`).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CapSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_has() {
        let mut s = CapSet::EMPTY;
        assert!(s.is_empty());
        s.add(Capability::SysAdmin);
        assert!(s.has(Capability::SysAdmin));
        assert!(!s.has(Capability::SysPtrace));
        s.remove(Capability::SysAdmin);
        assert!(s.is_empty());
    }

    #[test]
    fn docker_default_excludes_dangerous_caps() {
        let d = CapSet::docker_default();
        assert!(!d.has(Capability::SysAdmin));
        assert!(!d.has(Capability::SysPtrace));
        assert!(d.has(Capability::Chown));
        assert!(d.has(Capability::SysChroot));
        assert!(d.subset_of(CapSet::full()));
    }

    #[test]
    fn intersect_models_capability_drop() {
        let host = CapSet::full();
        let container = CapSet::docker_default();
        let attached = host.intersect(container);
        assert_eq!(attached, container);
        assert!(!attached.has(Capability::SysAdmin));
    }

    #[test]
    fn iter_and_len_agree() {
        let d = CapSet::docker_default();
        assert_eq!(d.iter().count() as u32, d.len());
        assert_eq!(CapSet::full().len() as usize, ALL_CAPS.len());
    }

    #[test]
    fn display_formats_names() {
        let mut s = CapSet::EMPTY;
        s.add(Capability::SysAdmin);
        assert_eq!(s.to_string(), "CAP_SYS_ADMIN");
        assert_eq!(CapSet::EMPTY.to_string(), "(none)");
    }
}
