//! Request tracing: trace ids, fixed-capacity per-thread span rings, and
//! chrome-trace JSON export.
//!
//! Every FUSE request is assigned a process-unique trace id
//! ([`next_trace_id`]). Components record named stage spans
//! (`client` → `transport` → `handler` → `storage`) against the current
//! trace; each span lands in the recording thread's ring buffer using a
//! seqlock protocol — the single writer (the owning thread) bumps a slot's
//! sequence to odd, stores the fields, bumps to even; readers retry slots
//! they observe mid-write. No locks anywhere, so spans can be recorded
//! inside FUSE park checkpoints.
//!
//! Rings are fixed capacity ([`RING_CAPACITY`] spans) and overwrite oldest
//! entries; they exist for "what did the last N requests do", not archival.
//! [`chrome_json`] exports everything currently held as a chrome-trace
//! (`chrome://tracing` / Perfetto) event array.

use std::cell::Cell as StdCell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crate::now_ns;

/// Spans retained per recording thread before overwrite.
pub const RING_CAPACITY: usize = 1024;

/// Maximum threads that may record spans; later threads fall back to
/// dropping spans (counted in `dropped_threads`) rather than blocking.
pub const MAX_RINGS: usize = 1024;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh nonzero trace id.
#[inline]
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT_TRACE: StdCell<u64> = const { StdCell::new(0) };
}

/// The trace id active on this thread (0 = none). Transports propagate it
/// across their worker boundary so handler/storage spans attribute to the
/// originating request without changing the `Transport` trait signature.
#[inline]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// Set the current trace id, returning the previous one (restore it when
/// the scope ends — see [`TraceScope`]).
#[inline]
pub fn set_current_trace(id: u64) -> u64 {
    CURRENT_TRACE.with(|c| c.replace(id))
}

/// RAII: makes `id` the thread's current trace, restoring the previous id
/// on drop (re-entrant FUSE requests nest correctly).
pub struct TraceScope {
    prev: u64,
}

impl TraceScope {
    pub fn enter(id: u64) -> Self {
        TraceScope {
            prev: set_current_trace(id),
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        set_current_trace(self.prev);
    }
}

// ---------------------------------------------------------------------------
// Span rings (seqlock slots, single writer per ring)
// ---------------------------------------------------------------------------

struct Slot {
    /// Seqlock: odd while the owning thread is writing, even when stable.
    /// `0` means never written.
    seq: AtomicU64,
    trace: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    /// `&'static str` stage name decomposed into (ptr, len) so each half
    /// fits in an atomic; reconstructed unsafely by readers (sound: the
    /// referent is `'static`).
    stage_ptr: AtomicUsize,
    stage_len: AtomicUsize,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            stage_ptr: AtomicUsize::new(0),
            stage_len: AtomicUsize::new(0),
        }
    }
}

struct Ring {
    /// Dense thread index, used as the chrome-trace `tid`.
    tid: u64,
    /// Monotone write cursor (mod RING_CAPACITY picks the slot).
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl Ring {
    /// Single-writer record: only the owning thread calls this.
    fn record(&self, trace: u64, stage: &'static str, start_ns: u64, dur_ns: u64) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % RING_CAPACITY;
        let slot = &self.slots[i];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq | 1, Ordering::Release); // odd: write in progress
        slot.trace.store(trace, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.stage_ptr
            .store(stage.as_ptr() as usize, Ordering::Relaxed);
        slot.stage_len.store(stage.len(), Ordering::Relaxed);
        slot.seq.store((seq | 1).wrapping_add(1), Ordering::Release); // even: stable
    }

    fn read(&self, i: usize) -> Option<SpanRecord> {
        let slot = &self.slots[i];
        for _ in 0..8 {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                return None; // never written, or mid-write
            }
            let trace = slot.trace.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            let ptr = slot.stage_ptr.load(Ordering::Relaxed);
            let len = slot.stage_len.load(Ordering::Relaxed);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 == s2 {
                // SAFETY: (ptr, len) were stored from a `&'static str` and
                // the seqlock proved no torn read between the two halves.
                let stage = unsafe {
                    std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len))
                };
                return Some(SpanRecord {
                    trace,
                    stage,
                    start_ns,
                    dur_ns,
                    tid: self.tid,
                });
            }
        }
        None // writer kept lapping us; drop the slot
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const NULL_RING: AtomicPtr<Ring> = AtomicPtr::new(std::ptr::null_mut());
static RINGS: [AtomicPtr<Ring>; MAX_RINGS] = [NULL_RING; MAX_RINGS];
static RING_LEN: AtomicUsize = AtomicUsize::new(0);
static DROPPED_THREADS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static MY_RING: StdCell<Option<&'static Ring>> = const { StdCell::new(None) };
}

fn my_ring() -> Option<&'static Ring> {
    MY_RING.with(|r| {
        if let Some(ring) = r.get() {
            return Some(ring);
        }
        let i = RING_LEN.fetch_add(1, Ordering::AcqRel);
        if i >= MAX_RINGS {
            DROPPED_THREADS.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let ring: &'static Ring = Box::leak(Box::new(Ring {
            tid: i as u64,
            cursor: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
        }));
        RINGS[i].store(ring as *const Ring as *mut Ring, Ordering::Release);
        r.set(Some(ring));
        Some(ring)
    })
}

/// Threads that could not get a span ring (registry full) and are dropping
/// spans.
pub fn dropped_threads() -> u64 {
    DROPPED_THREADS.load(Ordering::Relaxed)
}

/// A span read back out of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace: u64,
    pub stage: &'static str,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Dense recording-thread index (chrome-trace `tid`).
    pub tid: u64,
}

/// Record a completed span against `trace` on this thread's ring.
#[inline]
pub fn record_span(trace: u64, stage: &'static str, start_ns: u64, end_ns: u64) {
    if trace == 0 {
        return;
    }
    if let Some(ring) = my_ring() {
        ring.record(trace, stage, start_ns, end_ns.saturating_sub(start_ns));
    }
}

/// RAII span: times from construction to drop and records against the
/// thread's *current* trace (captured at construction).
pub struct Span {
    trace: u64,
    stage: &'static str,
    start_ns: u64,
}

impl Span {
    /// Start a span against the thread's current trace. If no trace is
    /// active this is a no-op shell (one thread-local read).
    #[inline]
    pub fn start(stage: &'static str) -> Self {
        let trace = current_trace();
        Span {
            trace,
            stage,
            start_ns: if trace == 0 { 0 } else { now_ns() },
        }
    }

    /// Start a span against an explicit trace id.
    #[inline]
    pub fn start_for(trace: u64, stage: &'static str) -> Self {
        Span {
            trace,
            stage,
            start_ns: if trace == 0 { 0 } else { now_ns() },
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.trace != 0 {
            record_span(self.trace, self.stage, self.start_ns, now_ns());
        }
    }
}

fn all_spans() -> Vec<SpanRecord> {
    let len = RING_LEN.load(Ordering::Acquire).min(MAX_RINGS);
    let mut out = Vec::new();
    for slot in &RINGS[..len] {
        let p = slot.load(Ordering::Acquire);
        if p.is_null() {
            continue;
        }
        let ring = unsafe { &*p };
        for i in 0..RING_CAPACITY {
            if let Some(rec) = ring.read(i) {
                out.push(rec);
            }
        }
    }
    out.sort_by_key(|r| (r.start_ns, r.tid));
    out
}

/// All retained spans for one trace id, in start order (test helper).
pub fn spans_for(trace: u64) -> Vec<SpanRecord> {
    let mut v: Vec<SpanRecord> = all_spans()
        .into_iter()
        .filter(|r| r.trace == trace)
        .collect();
    v.sort_by_key(|r| (r.start_ns, r.tid));
    v
}

/// Export every retained span as a chrome-trace JSON event array
/// (loadable in `chrome://tracing` or Perfetto). Timestamps are µs since
/// the obs epoch; `pid` is 1; `tid` is the dense recording-thread index;
/// the trace id rides in `args.trace`.
pub fn chrome_json() -> String {
    let spans = all_spans();
    let mut out = String::from("[\n");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // Stage names are static identifiers we control (no escaping needed).
        out.push_str(&format!(
            "  {{\"name\":\"{}\",\"cat\":\"cntr\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{}}}}}",
            s.stage,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.tid,
            s.trace,
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a != 0 && b != 0 && a != b);
    }

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_trace(), 0);
        {
            let _outer = TraceScope::enter(10);
            assert_eq!(current_trace(), 10);
            {
                let _inner = TraceScope::enter(20);
                assert_eq!(current_trace(), 20);
            }
            assert_eq!(current_trace(), 10);
        }
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn spans_recorded_and_read_back() {
        let trace = next_trace_id();
        {
            let _scope = TraceScope::enter(trace);
            let _outer = Span::start("client");
            let _inner = Span::start("handler");
        }
        let spans = spans_for(trace);
        let stages: Vec<&str> = spans.iter().map(|s| s.stage).collect();
        assert!(stages.contains(&"client"), "stages: {stages:?}");
        assert!(stages.contains(&"handler"), "stages: {stages:?}");
        for s in &spans {
            assert_eq!(s.trace, trace);
        }
    }

    #[test]
    fn span_without_current_trace_is_noop() {
        assert_eq!(current_trace(), 0);
        let before = all_spans().len();
        {
            let _s = Span::start("client");
        }
        assert_eq!(all_spans().len(), before);
    }

    #[test]
    fn ring_overwrites_oldest_without_growing() {
        let trace = next_trace_id();
        let _scope = TraceScope::enter(trace);
        for _ in 0..(RING_CAPACITY * 2) {
            record_span(trace, "handler", 1, 2);
        }
        let mine: Vec<_> = spans_for(trace);
        assert!(mine.len() <= RING_CAPACITY);
        assert!(!mine.is_empty());
    }

    #[test]
    fn chrome_json_is_wellformed_array() {
        let trace = next_trace_id();
        record_span(trace, "storage", 1_000, 2_500);
        let json = chrome_json();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"storage\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains(&format!("\"trace\":{trace}")));
    }

    #[test]
    fn cross_thread_spans_visible() {
        let trace = next_trace_id();
        let t = std::thread::spawn(move || {
            record_span(trace, "transport", 5, 9);
        });
        t.join().unwrap();
        record_span(trace, "client", 1, 10);
        let stages: Vec<&str> = spans_for(trace).iter().map(|s| s.stage).collect();
        assert!(stages.contains(&"transport"));
        assert!(stages.contains(&"client"));
    }
}
