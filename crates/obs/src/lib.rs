//! Lock-free observability core for the cntr workspace.
//!
//! Everything in this crate is built from plain atomics — there is **no lock
//! anywhere** (no `std::sync::Mutex`, no `parking_lot` shim). That is a hard
//! requirement, not a style choice:
//!
//! * metric updates happen inside FUSE park checkpoints
//!   (`lockdep::assert_no_locks_held_except`), where taking any lock would
//!   trip the checkpoint or, worse, deadlock against the transport;
//! * the `parking_lot` shim itself reports lock contention, so the metrics
//!   sink must sit *below* the locking layer in the dependency graph.
//!
//! # Model
//!
//! Metrics are `&'static` leaked cells registered once in a fixed-capacity
//! slot array ([`MAX_METRICS`]). Call sites hold [`LazyCounter`] /
//! [`LazyGauge`] / [`LazyHistogram`] statics that resolve to their registered
//! cell on first touch; after that every update is 1–4 relaxed atomic ops.
//! Registration is idempotent by name, so two components naming the same
//! metric share one cell.
//!
//! [`render`] produces the vmstat-style `name value` report mounted at
//! `/proc/cntrstats`: subsystems appear in rank order ([`Subsystem::rank`]),
//! names sorted within a subsystem, and each subsystem is read in one tight
//! pass so its lines are snapshot-consistent relative to each other (metrics
//! are independent atomics, so cross-subsystem tearing is possible and
//! documented — same contract as Linux `/proc/vmstat`).
//!
//! Request tracing (trace ids, per-thread span rings, chrome-trace export)
//! lives in [`trace`].

pub mod trace;

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Metric families are ranked per subsystem; `/proc/cntrstats` renders them
/// in this order (hot data path first, infrastructure last).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// FUSE client/transport/server (`fuse.*`).
    Fuse,
    /// Kernel page cache (`pagecache.*`).
    PageCache,
    /// Overlay filesystem (`overlay.*`).
    Overlay,
    /// Container engines (`engine.*`).
    Engine,
    /// The attach plane: event loop, socket proxy, pty (`core.*`).
    Core,
    /// Lock contention, bridged from `crates/lockdep` (`lockdep.*`).
    Lockdep,
    /// Block device I/O (`blockdev.*`).
    BlockDev,
}

/// All subsystems in render (rank) order.
pub const SUBSYSTEMS: [Subsystem; 7] = [
    Subsystem::Fuse,
    Subsystem::PageCache,
    Subsystem::Overlay,
    Subsystem::Engine,
    Subsystem::Core,
    Subsystem::Lockdep,
    Subsystem::BlockDev,
];

impl Subsystem {
    /// Render order in `/proc/cntrstats` (lower renders first).
    pub fn rank(self) -> usize {
        self as usize
    }

    /// The metric-name prefix this subsystem's metrics must carry.
    pub fn prefix(self) -> &'static str {
        match self {
            Subsystem::Fuse => "fuse.",
            Subsystem::PageCache => "pagecache.",
            Subsystem::Overlay => "overlay.",
            Subsystem::Engine => "engine.",
            Subsystem::Core => "core.",
            Subsystem::Lockdep => "lockdep.",
            Subsystem::BlockDev => "blockdev.",
        }
    }
}

// ---------------------------------------------------------------------------
// Metric cells
// ---------------------------------------------------------------------------

/// Monotonic event counter. All operations are relaxed atomics.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A standalone (unregistered) counter — usable as a plain struct field,
    /// e.g. `blockdev::IoStats` keeps per-device counters out of the global
    /// registry.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous level (queue depth, dirty pages). Relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count for [`Histogram`]: 4 linear sub-buckets per power of two
/// covering the full `u64` range (values 0..=3 get exact buckets).
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Log-linear histogram: 4 sub-buckets per power of two (≤ ~25% relative
/// quantile error), exact atomic max, relaxed-atomic recording. Intended for
/// latencies in nanoseconds but unit-agnostic.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array from a const item.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Bucket index for a value: values below 4 map to themselves; above,
    /// the exponent picks a group of 4 and the two bits below the MSB pick
    /// the sub-bucket, so bucket lower bounds are strictly increasing.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < 4 {
            v as usize
        } else {
            let e = 63 - v.leading_zeros() as usize; // >= 2
            let sub = ((v >> (e - 2)) & 3) as usize;
            (e - 1) * 4 + sub
        }
    }

    /// Inclusive lower bound of bucket `idx` (used as the quantile estimate).
    #[inline]
    pub fn bucket_low(idx: usize) -> u64 {
        if idx < 4 {
            idx as u64
        } else {
            let e = idx / 4 + 1;
            let sub = (idx % 4) as u64;
            (1u64 << e) + (sub << (e - 2))
        }
    }

    /// Record one sample. Four relaxed atomic RMWs; safe anywhere, including
    /// inside FUSE park checkpoints.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimate quantile `q` in \[0,1\] as the lower bound of the bucket
    /// containing the q-th sample. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(b.load(Ordering::Relaxed));
            if cum >= rank {
                // The true max is tracked exactly; never report a bucket
                // bound beyond it.
                return Self::bucket_low(idx).min(self.max());
            }
        }
        self.max()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Every `Metric` is individually leaked on the heap at registration time,
// so the histogram's bucket array costing more than a counter wastes no
// per-slot space — and keeping it inline spares the update path a second
// pointer chase.
#[allow(clippy::large_enum_variant)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Metric {
    subsystem: Subsystem,
    name: &'static str,
    cell: Cell,
}

/// Capacity of the static metric registry; registration past this panics
/// (a registration-time programming error, never a hot-path condition).
pub const MAX_METRICS: usize = 1024;

#[allow(clippy::declare_interior_mutable_const)]
const NULL_METRIC: AtomicPtr<Metric> = AtomicPtr::new(std::ptr::null_mut());
static SLOTS: [AtomicPtr<Metric>; MAX_METRICS] = [NULL_METRIC; MAX_METRICS];
static LEN: AtomicUsize = AtomicUsize::new(0);

fn assert_name(subsystem: Subsystem, name: &str) {
    assert!(
        name.starts_with(subsystem.prefix()),
        "obs: metric `{name}` must start with `{}`",
        subsystem.prefix()
    );
    let kebab_dot = name.split('.').all(|seg| {
        !seg.is_empty()
            && !seg.starts_with('-')
            && !seg.ends_with('-')
            && !seg.contains("--")
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    });
    assert!(kebab_dot, "obs: metric `{name}` is not kebab/dot-cased");
}

/// Register (or find) a metric cell. Lock-free: a slot index is claimed with
/// one `fetch_add`, the leaked cell is published with a release store, and
/// readers skip not-yet-published slots. The linear duplicate scan only runs
/// at registration time, never on the update path.
fn register(subsystem: Subsystem, name: &str, make: impl FnOnce() -> Cell) -> &'static Metric {
    assert_name(subsystem, name);
    // Idempotent by name: return the existing cell if someone beat us here.
    if let Some(m) = find(name) {
        assert_eq!(
            m.subsystem, subsystem,
            "obs: metric `{name}` registered under two subsystems"
        );
        return m;
    }
    let metric: &'static Metric = Box::leak(Box::new(Metric {
        subsystem,
        name: Box::leak(name.to_owned().into_boxed_str()),
        cell: make(),
    }));
    let i = LEN.fetch_add(1, Ordering::AcqRel);
    assert!(i < MAX_METRICS, "obs: metric registry full ({MAX_METRICS})");
    SLOTS[i].store(metric as *const Metric as *mut Metric, Ordering::Release);
    metric
}

fn iter_metrics() -> impl Iterator<Item = &'static Metric> {
    let len = LEN.load(Ordering::Acquire).min(MAX_METRICS);
    SLOTS[..len].iter().filter_map(|slot| {
        let p = slot.load(Ordering::Acquire);
        // A concurrent register() may have claimed the slot but not yet
        // published the cell; skip it this pass.
        (!p.is_null()).then(|| unsafe { &*p })
    })
}

fn find(name: &str) -> Option<&'static Metric> {
    iter_metrics().find(|m| m.name == name)
}

/// Register (or look up) a named counter.
pub fn register_counter(subsystem: Subsystem, name: &str) -> &'static Counter {
    match &register(subsystem, name, || Cell::Counter(Counter::new())).cell {
        Cell::Counter(c) => c,
        _ => panic!("obs: metric `{name}` already registered with a different kind"),
    }
}

/// Register (or look up) a named gauge.
pub fn register_gauge(subsystem: Subsystem, name: &str) -> &'static Gauge {
    match &register(subsystem, name, || Cell::Gauge(Gauge::new())).cell {
        Cell::Gauge(g) => g,
        _ => panic!("obs: metric `{name}` already registered with a different kind"),
    }
}

/// Register (or look up) a named histogram.
pub fn register_histogram(subsystem: Subsystem, name: &str) -> &'static Histogram {
    match &register(subsystem, name, || Cell::Histogram(Histogram::new())).cell {
        Cell::Histogram(h) => h,
        _ => panic!("obs: metric `{name}` already registered with a different kind"),
    }
}

/// Read a registered counter by name (observability tests / assertions).
pub fn counter_value(name: &str) -> Option<u64> {
    match &find(name)?.cell {
        Cell::Counter(c) => Some(c.value()),
        _ => None,
    }
}

/// Read a registered gauge by name.
pub fn gauge_value(name: &str) -> Option<i64> {
    match &find(name)?.cell {
        Cell::Gauge(g) => Some(g.value()),
        _ => None,
    }
}

/// Look up a registered histogram by name.
pub fn histogram(name: &str) -> Option<&'static Histogram> {
    match &find(name)?.cell {
        Cell::Histogram(h) => Some(h),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Lazy call-site handles
// ---------------------------------------------------------------------------

/// A const-constructible counter handle: `static N: LazyCounter =
/// LazyCounter::new(Subsystem::Fuse, "fuse.req.started");`. First touch
/// registers; afterwards updates are one relaxed atomic add.
pub struct LazyCounter {
    subsystem: Subsystem,
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    pub const fn new(subsystem: Subsystem, name: &'static str) -> Self {
        LazyCounter {
            subsystem,
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn get(&self) -> &'static Counter {
        self.cell
            .get_or_init(|| register_counter(self.subsystem, self.name))
    }

    #[inline]
    pub fn inc(&self) {
        self.get().inc();
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    #[inline]
    pub fn value(&self) -> u64 {
        self.get().value()
    }
}

/// Const-constructible gauge handle; see [`LazyCounter`].
pub struct LazyGauge {
    subsystem: Subsystem,
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    pub const fn new(subsystem: Subsystem, name: &'static str) -> Self {
        LazyGauge {
            subsystem,
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn get(&self) -> &'static Gauge {
        self.cell
            .get_or_init(|| register_gauge(self.subsystem, self.name))
    }

    #[inline]
    pub fn inc(&self) {
        self.get().inc();
    }

    #[inline]
    pub fn dec(&self) {
        self.get().dec();
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.get().add(n);
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.get().set(v);
    }

    #[inline]
    pub fn value(&self) -> i64 {
        self.get().value()
    }
}

/// Const-constructible histogram handle; see [`LazyCounter`].
pub struct LazyHistogram {
    subsystem: Subsystem,
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    pub const fn new(subsystem: Subsystem, name: &'static str) -> Self {
        LazyHistogram {
            subsystem,
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    pub fn get(&self) -> &'static Histogram {
        self.cell
            .get_or_init(|| register_histogram(self.subsystem, self.name))
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.get().record(v);
    }
}

// ---------------------------------------------------------------------------
// Wall clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic wall-clock nanoseconds since the process-local obs epoch.
///
/// Deliberately *not* `SimClock`: the sim clock models costs the kernel
/// charges, while obs latencies diagnose where real time went (threaded
/// transport parks, lock contention), which the sim clock cannot see.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Times a region on drop into a histogram: a few nanoseconds of overhead
/// plus one histogram record.
pub struct Timed {
    hist: &'static Histogram,
    start: u64,
}

impl Timed {
    pub fn new(hist: &'static Histogram) -> Self {
        Timed {
            hist,
            start: now_ns(),
        }
    }
}

impl Drop for Timed {
    fn drop(&mut self) {
        self.hist.record(now_ns().saturating_sub(self.start));
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// One rendered line of `/proc/cntrstats`.
fn render_metric(out: &mut String, m: &Metric) {
    match &m.cell {
        Cell::Counter(c) => {
            let _ = writeln!(out, "{} {}", m.name, c.value());
        }
        Cell::Gauge(g) => {
            let _ = writeln!(out, "{} {}", m.name, g.value());
        }
        Cell::Histogram(h) => {
            // Five derived lines per histogram, vmstat-style.
            let _ = writeln!(out, "{}.count {}", m.name, h.count());
            let _ = writeln!(out, "{}.p50 {}", m.name, h.quantile(0.50));
            let _ = writeln!(out, "{}.p95 {}", m.name, h.quantile(0.95));
            let _ = writeln!(out, "{}.p99 {}", m.name, h.quantile(0.99));
            let _ = writeln!(out, "{}.max {}", m.name, h.max());
        }
    }
}

/// Render every registered metric as vmstat-style `name value` lines:
/// subsystems in rank order, names sorted within a subsystem, each
/// subsystem read in a single tight pass (snapshot-consistent per
/// subsystem; cross-subsystem tearing is possible, as in `/proc/vmstat`).
pub fn render() -> String {
    let mut out = String::new();
    for sub in SUBSYSTEMS {
        let mut metrics: Vec<&'static Metric> =
            iter_metrics().filter(|m| m.subsystem == sub).collect();
        metrics.sort_by_key(|m| m.name);
        for m in metrics {
            render_metric(&mut out, m);
        }
    }
    out
}

/// Render one subsystem's metrics (used by benches to scope their report).
pub fn render_subsystem(sub: Subsystem) -> String {
    let mut out = String::new();
    let mut metrics: Vec<&'static Metric> = iter_metrics().filter(|m| m.subsystem == sub).collect();
    metrics.sort_by_key(|m| m.name);
    for m in metrics {
        render_metric(&mut out, m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn bucket_index_monotone_and_consistent() {
        // Lower bounds strictly increase and every value lands in the bucket
        // whose range contains it.
        let mut prev = None;
        for idx in 0..HISTOGRAM_BUCKETS {
            let low = Histogram::bucket_low(idx);
            if let Some(p) = prev {
                assert!(low > p, "bucket {idx} low {low} not > {p}");
            }
            assert_eq!(Histogram::bucket_index(low), idx);
            prev = Some(low);
        }
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1_000, 123_456_789, u64::MAX] {
            let idx = Histogram::bucket_index(v);
            assert!(Histogram::bucket_low(idx) <= v);
            if idx + 1 < HISTOGRAM_BUCKETS {
                assert!(v < Histogram::bucket_low(idx + 1));
            }
        }
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
        // Log-linear buckets: estimate is the bucket lower bound, within
        // ~25% below the true quantile.
        let p50 = h.quantile(0.50);
        assert!((375..=500).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((750..=990).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 1000); // clamped by exact max
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn registry_idempotent_and_rendered_in_rank_order() {
        static C: LazyCounter = LazyCounter::new(Subsystem::Fuse, "fuse.test.alpha");
        static G: LazyGauge = LazyGauge::new(Subsystem::PageCache, "pagecache.test.depth");
        static H: LazyHistogram = LazyHistogram::new(Subsystem::Fuse, "fuse.test.lat-ns");
        C.add(3);
        G.set(7);
        H.record(42);
        // Re-registering by name returns the same cell.
        assert_eq!(
            register_counter(Subsystem::Fuse, "fuse.test.alpha").value(),
            3
        );
        assert_eq!(counter_value("fuse.test.alpha"), Some(3));
        assert_eq!(gauge_value("pagecache.test.depth"), Some(7));

        let out = render();
        let fuse_pos = out.find("fuse.test.alpha 3").expect("counter line");
        let hist_pos = out.find("fuse.test.lat-ns.count 1").expect("hist line");
        let pc_pos = out.find("pagecache.test.depth 7").expect("gauge line");
        // fuse renders before pagecache; names sorted within fuse.
        assert!(fuse_pos < hist_pos && hist_pos < pc_pos);
    }

    #[test]
    fn concurrent_registration_and_updates() {
        static DONE: AtomicBool = AtomicBool::new(false);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        register_counter(Subsystem::Engine, "engine.test.race").inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        DONE.store(true, Ordering::Relaxed);
        assert_eq!(counter_value("engine.test.race"), Some(8000));
    }

    #[test]
    #[should_panic(expected = "kebab/dot-cased")]
    fn rejects_bad_case() {
        register_counter(Subsystem::Fuse, "fuse.BadName");
    }

    #[test]
    #[should_panic(expected = "must start with")]
    fn rejects_wrong_prefix() {
        register_counter(Subsystem::Fuse, "pagecache.sneaky");
    }
}
