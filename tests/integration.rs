//! End-to-end integration tests spanning every crate: registry → engines →
//! slimming → deployment → attach → tools → failure injection.

use cntr::engine::registry::DeploymentModel;
use cntr::fs::Filesystem;
use cntr::prelude::*;
use cntr::slim::DockerSlim;
use cntr::types::Errno;
use std::sync::Arc;

fn host_with_tools() -> Kernel {
    let kernel = boot_host(SimClock::new());
    for tool in [
        "gdb", "ls", "cat", "ps", "strace", "tee", "stat", "env", "hostname",
    ] {
        let path = format!("/usr/bin/{tool}");
        let fd = kernel
            .open(Pid::INIT, &path, OpenFlags::create(), Mode::RWXR_XR_X)
            .unwrap();
        kernel.write_fd(Pid::INIT, fd, b"tool").unwrap();
        kernel.close(Pid::INIT, fd).unwrap();
        kernel.chmod(Pid::INIT, &path, Mode::RWXR_XR_X).unwrap();
    }
    kernel.setenv(Pid::INIT, "PATH", "/usr/bin").unwrap();
    kernel
}

fn fat_nginx() -> Arc<cntr::engine::Image> {
    ImageBuilder::new("nginx", "fat")
        .layer("debian")
        .binary("/bin/bash", 1_100_000, &["/lib/libc.so"])
        .binary("/usr/bin/apt", 4_000_000, &["/lib/libc.so"])
        .file("/usr/share/doc/everything", 40_000_000)
        .layer("nginx")
        .binary(
            "/usr/sbin/nginx",
            1_500_000,
            &["/lib/libc.so", "/lib/libssl.so"],
        )
        .file("/lib/libc.so", 2_000_000)
        .file("/lib/libssl.so", 700_000)
        .text("/etc/nginx.conf", "worker_processes auto;\n")
        .entrypoint("/usr/sbin/nginx")
        .build()
}

/// The paper's whole story in one test: build a fat image, slim it with
/// Docker Slim, show the slim image deploys faster, then recover the missing
/// tooling at runtime by attaching with CNTR.
#[test]
fn slim_deploy_attach_pipeline() {
    let kernel = host_with_tools();
    let registry = Registry::new();
    registry.push(fat_nginx());
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry.clone());

    // 1. Profile and slim the fat image.
    docker.run("profile", "nginx:fat").unwrap();
    let fat = registry.get("nginx:fat").unwrap();
    let report = DockerSlim::new().slim(&docker, "profile", &fat).unwrap();
    assert!(report.reduction_percent() > 50.0);
    registry.push(Arc::clone(&report.slim_image));
    docker.stop("profile").unwrap();

    // 2. The slim image deploys faster onto a fresh host.
    let model = DeploymentModel::datacenter();
    let fat_deploy = registry.deploy("host-a", "nginx:fat", model).unwrap();
    let slim_deploy = registry.deploy("host-b", "nginx:fat-slim", model).unwrap();
    assert!(slim_deploy.total_time < fat_deploy.total_time);
    assert!(
        fat_deploy.download_fraction() > 0.5,
        "downloads dominate deployment"
    );

    // 3. The slim container runs, but has no tools at all.
    let web = docker.run("web", "nginx:fat-slim").unwrap();
    assert!(kernel.stat(web.pid, "/usr/sbin/nginx").unwrap().is_file());
    assert!(kernel.stat(web.pid, "/bin/bash").is_err());

    // 4. CNTR restores full tooling at runtime, from the host.
    let cntr = Cntr::new(kernel.clone());
    let session = cntr.attach(web.pid, CntrOptions::default()).unwrap();
    let out = session.run(&format!("gdb -p {}", web.pid));
    assert!(out.contains("Attaching to process"), "{out}");
    let conf = session.run("cat /var/lib/cntr/etc/nginx.conf");
    assert!(conf.contains("worker_processes"), "{conf}");
    session.detach().unwrap();

    // 5. The container itself was never polluted.
    assert!(kernel.stat(web.pid, "/usr/bin/gdb").is_err());
}

/// CNTR works identically across all four engine flavours (paper §4).
#[test]
fn attach_works_on_every_engine() {
    for kind in EngineKind::ALL {
        let kernel = host_with_tools();
        let registry = Registry::new();
        registry.push(fat_nginx());
        let rt = ContainerRuntime::new(kind, kernel.clone(), registry);
        let _started = rt.run("app", "nginx:fat").unwrap();
        let cntr = Cntr::new(kernel.clone());
        let session = cntr
            .attach_with_engine(&rt, "app", None, FuseConfig::optimized())
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(
            kernel
                .stat(session.attached, "/var/lib/cntr/usr/sbin/nginx")
                .unwrap()
                .is_file(),
            "{kind:?}"
        );
        session.detach().unwrap();
    }
}

/// Killing the CntrFS server must not harm the application container.
#[test]
fn server_crash_leaves_application_intact() {
    let kernel = host_with_tools();
    let registry = Registry::new();
    registry.push(fat_nginx());
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let c = docker.run("app", "nginx:fat").unwrap();
    let cntr = Cntr::new(kernel.clone());
    let session = cntr.attach(c.pid, CntrOptions::default()).unwrap();
    assert!(kernel.stat(session.attached, "/usr/bin/gdb").is_ok());

    session.kill_server();
    assert_eq!(
        kernel.stat(session.attached, "/usr/bin/never-seen"),
        Err(Errno::ENOTCONN)
    );
    // The application is unaffected: its filesystem is not behind FUSE.
    assert!(kernel.stat(c.pid, "/usr/sbin/nginx").unwrap().is_file());
    let fd = kernel
        .open(c.pid, "/etc/nginx.conf", OpenFlags::RDONLY, Mode::RW_R__R__)
        .unwrap();
    kernel.close(c.pid, fd).unwrap();
}

/// Attach sessions are isolated: two concurrent sessions on different
/// containers do not interfere.
#[test]
fn concurrent_sessions_are_isolated() {
    let kernel = host_with_tools();
    let registry = Registry::new();
    registry.push(fat_nginx());
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let a = docker.run("a", "nginx:fat").unwrap();
    let b = docker.run("b", "nginx:fat").unwrap();
    let cntr = Cntr::new(kernel.clone());
    let sa = cntr.attach(a.pid, CntrOptions::default()).unwrap();
    let sb = cntr.attach(b.pid, CntrOptions::default()).unwrap();
    // Write through session A's /var/lib/cntr; session B must not see it.
    sa.run("tee /var/lib/cntr/tmp/marker from-session-a");
    assert!(kernel.stat(a.pid, "/tmp/marker").unwrap().is_file());
    assert!(kernel.stat(b.pid, "/tmp/marker").is_err());
    sa.detach().unwrap();
    // Session B still works after A detached.
    assert!(kernel.stat(sb.attached, "/usr/bin/gdb").unwrap().is_file());
    sb.detach().unwrap();
}

/// The per-engine container ids resolve, and resolution drives attach.
#[test]
fn engine_name_resolution_end_to_end() {
    let kernel = host_with_tools();
    let registry = Registry::new();
    registry.push(fat_nginx());
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let c = docker.run("named", "nginx:fat").unwrap();
    assert_eq!(docker.resolve("named").unwrap(), c.pid);
    assert_eq!(docker.resolve(&c.id[..12]).unwrap(), c.pid);
    let cntr = Cntr::new(kernel.clone());
    let by_id = cntr
        .attach_with_engine(&docker, &c.id[..12], None, FuseConfig::optimized())
        .unwrap();
    assert_eq!(by_id.target, c.pid);
    by_id.detach().unwrap();
}

/// Engine-matrix smoke over the overlay subsystem (ROADMAP's engine-matrix
/// item): each of the four engine flavours runs containers on an
/// OverlayFs-backed rootfs — observable in the kernel mount table via
/// `/proc/<pid>/mounts` — CNTR attaches over it, and a **nested
/// container-in-container** started with `run_nested` can be attached to as
/// well.
#[test]
fn engine_matrix_attach_over_overlayfs_including_nested() {
    for kind in EngineKind::ALL {
        let kernel = host_with_tools();
        let registry = Registry::new();
        registry.push(fat_nginx());
        let rt = ContainerRuntime::new(kind, kernel.clone(), registry);
        let outer = rt.run("outer", "nginx:fat").unwrap();

        // The rootfs is a real overlay registered in the mount table.
        let overlay = rt
            .overlay_of("outer")
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(overlay.fs_type(), "overlay");
        let fd = kernel
            .open(
                Pid::INIT,
                &format!("/proc/{}/mounts", outer.pid.raw()),
                OpenFlags::RDONLY,
                Mode::RW_R__R__,
            )
            .unwrap();
        let mut buf = [0u8; 4096];
        let n = kernel.read_fd(Pid::INIT, fd, &mut buf).unwrap();
        kernel.close(Pid::INIT, fd).unwrap();
        let mounts = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(
            mounts.contains("overlay") && mounts.contains("lowerdir="),
            "{kind:?}: {mounts}"
        );

        let physical_after_outer = rt.blob_store().stats().physical_bytes;

        // CNTR attach works over the overlay rootfs.
        let cntr = Cntr::new(kernel.clone());
        let session = cntr
            .attach_with_engine(&rt, "outer", None, FuseConfig::optimized())
            .unwrap_or_else(|e| panic!("{kind:?}: attach failed: {e}"));
        assert!(
            kernel
                .stat(session.attached, "/var/lib/cntr/usr/sbin/nginx")
                .unwrap()
                .is_file(),
            "{kind:?}"
        );
        session.detach().unwrap();

        // Nested container-in-container: the inner rootfs lives in the
        // outer container's namespace, shares the same image layers, and
        // accepts an attach of its own.
        let inner = rt.run_nested("outer", "inner", "nginx:fat").unwrap();
        assert!(kernel.stat(inner.pid, "/usr/sbin/nginx").unwrap().is_file());
        let fd = kernel
            .open(
                inner.pid,
                "/tmp/nested-marker",
                OpenFlags::create(),
                Mode::RW_R__R__,
            )
            .unwrap();
        kernel.write_fd(inner.pid, fd, b"inner").unwrap();
        kernel.close(inner.pid, fd).unwrap();
        assert!(kernel
            .stat(inner.pid, "/tmp/nested-marker")
            .unwrap()
            .is_file());
        assert!(
            kernel.stat(outer.pid, "/tmp/nested-marker").is_err(),
            "{kind:?}: nested writes must not leak into the outer container"
        );
        assert!(kernel.stat(Pid::INIT, "/tmp/nested-marker").is_err());

        let nested_session = cntr.attach(inner.pid, CntrOptions::default()).unwrap();
        assert!(
            kernel
                .stat(nested_session.attached, "/var/lib/cntr/usr/sbin/nginx")
                .unwrap()
                .is_file(),
            "{kind:?}: attach into the nested container sees its rootfs"
        );
        nested_session.detach().unwrap();

        // Outer and inner shared every lower blob: the nested container's
        // image content added no physical bytes (only its small upper
        // writes — /tmp/nested-marker — could).
        let stats = rt.blob_store().stats();
        assert!(
            stats.physical_bytes <= physical_after_outer + 8192,
            "{kind:?}: nested container duplicated image bytes: {} -> {}",
            physical_after_outer,
            stats.physical_bytes
        );
    }
}
