//! End-to-end checks of the observability surface: `/proc/cntrstats`
//! rendered through the full stack, and request tracing across the
//! client → transport → handler → storage pipeline.
//!
//! Both checks live in one `#[test]` binary on purpose: the metrics
//! registry and the span rings are process-global, so a single test per
//! binary means no concurrent test can perturb the assertions.

use cntr::prelude::*;
use cntr_fuse::conn::ThreadedTransport;
use cntr_fuse::{FsHandler, FuseClientFs, FuseConfig};
use cntr_types::{CostModel, DevId, FileType, Ino};
use std::sync::Arc;

fn read_proc_cntrstats(kernel: &Kernel) -> String {
    let fd = kernel
        .open(
            Pid::INIT,
            "/proc/cntrstats",
            OpenFlags::RDONLY,
            Mode::RW_R__R__,
        )
        .expect("open /proc/cntrstats");
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = kernel
            .read_fd(Pid::INIT, fd, &mut buf)
            .expect("read /proc/cntrstats");
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    kernel.close(Pid::INIT, fd).expect("close");
    String::from_utf8(out).expect("cntrstats is utf-8")
}

#[test]
fn cntrstats_and_tracing_cover_the_stack() {
    // ---- Drive every subsystem once: boot, run, attach, shell, reap. ----
    let kernel = boot_host(SimClock::new());
    let registry = Registry::new();
    registry.push(
        ImageBuilder::new("app", "slim")
            .layer("app")
            .binary("/usr/local/bin/app", 1_000_000, &[])
            .entrypoint("/usr/local/bin/app")
            .build(),
    );
    let docker = ContainerRuntime::new(EngineKind::Docker, kernel.clone(), registry);
    let container = docker.run("probe", "app:slim").unwrap();
    let cntr = Cntr::new(kernel.clone());
    let session = cntr.attach(container.pid, CntrOptions::default()).unwrap();
    session.run("ls /var/lib/cntr/usr/local/bin");
    session.detach().unwrap();
    docker.stop("probe").unwrap();

    let text = read_proc_cntrstats(&kernel);

    // vmstat shape: every line is exactly `name value`.
    for line in text.lines() {
        let mut parts = line.split(' ');
        let (name, value) = (parts.next().unwrap(), parts.next().unwrap());
        assert!(parts.next().is_none(), "extra column in {line:?}");
        assert!(!name.is_empty());
        value.parse::<i64>().unwrap_or_else(|_| panic!("{line:?}"));
    }

    // Live counters from at least six subsystems.
    for prefix in [
        "fuse.",
        "pagecache.",
        "overlay.",
        "engine.",
        "lockdep.",
        "core.",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(prefix)),
            "missing {prefix}* lines in:\n{text}"
        );
    }

    // Histogram families render their quantile lines with nonzero counts.
    for metric in ["engine.spawn.latency-ns", "engine.attach.latency-ns"] {
        for q in ["count", "p50", "p95", "p99", "max"] {
            assert!(
                text.lines()
                    .any(|l| l.starts_with(&format!("{metric}.{q} "))),
                "missing {metric}.{q} in:\n{text}"
            );
        }
        let count: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{metric}.count ")))
            .unwrap()
            .parse()
            .unwrap();
        assert!(count > 0, "{metric} must have recorded samples");
    }

    // Request accounting is symmetric once the session is torn down.
    let started = obs::counter_value("fuse.req.started").unwrap();
    let completed = obs::counter_value("fuse.req.completed").unwrap();
    assert!(started > 0);
    assert_eq!(started, completed);
    assert_eq!(obs::gauge_value("fuse.req.in-flight").unwrap(), 0);

    // ---- A spliced 1 MiB read carries a full trace. ----
    let clock = SimClock::new();
    let backing = cntr::fs::memfs::memfs(DevId(900), clock.clone());
    let transport = Arc::new(ThreadedTransport::new(FsHandler::new(backing), 2));
    let client = FuseClientFs::mount(
        DevId(0xAB),
        clock,
        CostModel::calibrated(),
        FuseConfig::optimized(),
        transport,
    )
    .unwrap();
    let st = client
        .mknod(
            Ino::ROOT,
            "big",
            FileType::Regular,
            Mode::RW_R__R__,
            0,
            &cntr::fs::FsContext::root(),
        )
        .unwrap();
    use cntr::fs::Filesystem;
    let fh = client.open(st.ino, OpenFlags::RDWR).unwrap();
    let payload = vec![0x5Au8; 1 << 20];
    client.write(st.ino, fh, 0, &payload).unwrap();

    let data = client.read_bytes_gather(st.ino, fh, 0, 1 << 20).unwrap();
    assert_eq!(data.len(), 1 << 20);
    assert!(data.iter().all(|&b| b == 0x5A));

    // Some trace of that read crossed all four pipeline stages.
    let bound = obs::trace::next_trace_id();
    let full = (1..bound)
        .filter(|&trace| {
            let stages: Vec<&str> = obs::trace::spans_for(trace)
                .iter()
                .map(|r| r.stage)
                .collect();
            ["client", "transport", "handler", "storage"]
                .iter()
                .all(|s| stages.contains(s))
        })
        .count();
    assert!(
        full > 0,
        "no trace crossed client/transport/handler/storage"
    );

    // The chrome-trace export is well-formed and carries those stages.
    let json = obs::trace::chrome_json();
    assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    for stage in ["client", "transport", "handler", "storage"] {
        assert!(json.contains(&format!("\"name\":\"{stage}\"")), "{stage}");
    }

    client.release(st.ino, fh).unwrap();
}
