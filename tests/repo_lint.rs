//! Static companion to the runtime lockdep checker (`crates/lockdep`):
//! three textual passes over the workspace sources that reject lock usage
//! the runtime checker could only catch if a test happened to drive the
//! path. Both checkers encode the same discipline — the rank table in
//! `crates/kernel/src/table.rs` — so a violation caught here names the
//! same classes a runtime panic would.
//!
//! 1. No direct `std::sync::{Mutex, RwLock}` outside `shims/` and
//!    `crates/lockdep`: every lock must go through the `parking_lot` shim
//!    so it participates in dependency tracking.
//! 2. No nested subsystem-lock acquisition in `crates/kernel` against the
//!    declared rank order. This is a heuristic line scanner — it tracks
//!    `let`-bound guards, closure-held shard access, and `if let`/`match`
//!    scrutinee temporaries (which live to the end of the block in edition
//!    2021) by brace depth. False positives are suppressed via
//!    `lockdep-allow.toml`, where every entry must carry a justification.
//! 3. No `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()` in
//!    non-test code: shim guards are infallible, so a guard unwrap means a
//!    std lock snuck in (or poison handling is being skipped).
//!
//! A fourth, observability-flavoured pass checks the metric names passed to
//! `LazyCounter::new` / `LazyGauge::new` / `LazyHistogram::new`: names must
//! be workspace-unique, kebab/dot-cased (`subsystem.noun-phrase`), and
//! carry the prefix of the subsystem they register under — `/proc/cntrstats`
//! is sorted by those names, so a malformed one corrupts the report shape.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strips string literals and `//` comments so braces and lock patterns in
/// text never confuse the scanner. (Good enough for this codebase: no brace
/// or quote lives in a char literal.)
fn strip_code(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// True once the scanner reaches the file's `#[cfg(test)]` module (test
/// modules sit at the end of their file in this workspace).
fn is_test_marker(code: &str) -> bool {
    code.trim_start().starts_with("#[cfg(test)]")
}

struct Violation {
    file: String,
    line: usize,
    text: String,
    message: String,
}

impl Violation {
    fn render(&self) -> String {
        format!(
            "{}:{}: {}\n    {}",
            self.file,
            self.line,
            self.message,
            self.text.trim()
        )
    }
}

// ---------------------------------------------------------------------
// lockdep-allow.toml
// ---------------------------------------------------------------------

struct AllowEntry {
    file: String,
    contains: String,
    justification: String,
}

/// Minimal hand parser for the `[[allow]]` entries (the build environment
/// has no toml crate; the format is deliberately flat).
fn load_allowlist(root: &Path) -> Vec<AllowEntry> {
    let path = root.join("lockdep-allow.toml");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut entries: Vec<AllowEntry> = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(AllowEntry {
                file: String::new(),
                contains: String::new(),
                justification: String::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            panic!("lockdep-allow.toml:{}: unparseable line: {line}", no + 1);
        };
        let entry = entries
            .last_mut()
            .expect("key outside an [[allow]] section");
        let value = value.trim().trim_matches('"').to_string();
        match key.trim() {
            "file" => entry.file = value,
            "contains" => entry.contains = value,
            "justification" => entry.justification = value,
            other => panic!("lockdep-allow.toml:{}: unknown key {other}", no + 1),
        }
    }
    for e in &entries {
        assert!(
            !e.file.is_empty() && !e.contains.is_empty(),
            "lockdep-allow.toml: entry for {:?} must set file and contains",
            e.file
        );
        assert!(
            e.justification.len() > 20,
            "lockdep-allow.toml: entry for {} needs a real justification, got {:?}",
            e.file,
            e.justification
        );
    }
    entries
}

fn allowed(allow: &[AllowEntry], file: &str, text: &str) -> bool {
    allow
        .iter()
        .any(|e| file.ends_with(&e.file) && text.contains(&e.contains))
}

// ---------------------------------------------------------------------
// Rule 1: std::sync lock ban
// ---------------------------------------------------------------------

fn check_std_sync_ban(root: &Path, violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    rust_files(&root.join("src"), &mut files);
    rust_files(&root.join("tests"), &mut files);
    rust_files(&root.join("examples"), &mut files);
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .to_string();
        // The lockdep engine itself must not use shim locks (it would
        // instrument its own registry into infinite recursion).
        if rel.starts_with("crates/lockdep") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        for (no, raw) in text.lines().enumerate() {
            let code = strip_code(raw);
            let hit = code.contains("std::sync::Mutex")
                || code.contains("std::sync::RwLock")
                || (code.contains("use std::sync::")
                    && (code.contains("Mutex") || code.contains("RwLock")));
            if hit {
                violations.push(Violation {
                    file: rel.clone(),
                    line: no + 1,
                    text: raw.to_string(),
                    message: "direct std::sync lock — use the parking_lot shim so the lock \
                              participates in lockdep"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: kernel subsystem-lock nesting
// ---------------------------------------------------------------------

/// How an acquisition pattern holds its lock — this decides which lines a
/// guard survives past, so getting it wrong either misses real nestings or
/// flags phantom ones.
#[derive(Clone, Copy, PartialEq)]
enum Acq {
    /// Returns a guard object: held past the line via a `let` binding, or
    /// via an `if let`/`match` scrutinee temporary (edition 2021 keeps
    /// those alive to the end of the block, even when chained).
    Guard,
    /// Closure-holding accessor (`with_proc(pid, |p| ...)`): the lock
    /// lives exactly for the closure body. A `let` or scrutinee binds the
    /// closure's *result*, not the lock, so the only way the lock outlives
    /// the line is a closure body spanning lines.
    Closure,
    /// Locks internally and returns plain data: participates in conflict
    /// checks at the call site but is never held afterwards.
    Internal,
}

/// `(pattern, class, group, kind)` — mirrors `declare_lock_discipline()`
/// in `crates/kernel/src/table.rs`. Group numbers are the declared rank
/// groups: acquiring a lower-or-equal group while holding a higher one is
/// what the runtime checker rejects.
const KERNEL_LOCKS: &[(&str, &str, u32, Acq)] = &[
    ("lock_shard_of(", "kernel.proc_shard", 0, Acq::Guard),
    ("lock_pair(", "kernel.proc_shard", 0, Acq::Guard),
    ("procs.with(", "kernel.proc_shard", 0, Acq::Closure),
    ("procs.with_mut(", "kernel.proc_shard", 0, Acq::Closure),
    ("with_proc(", "kernel.proc_shard", 0, Acq::Closure),
    ("with_proc_mut(", "kernel.proc_shard", 0, Acq::Closure),
    ("shards[", "kernel.proc_shard", 0, Acq::Guard),
    ("namespaces.read(", "kernel.mounts.registry", 1, Acq::Guard),
    ("namespaces.write(", "kernel.mounts.registry", 1, Acq::Guard),
    ("ns.read()", "kernel.mounts.ns", 2, Acq::Guard),
    ("ns.write()", "kernel.mounts.ns", 2, Acq::Guard),
    ("table.read()", "kernel.mounts.ns", 2, Acq::Guard),
    ("with_read(", "kernel.mounts.ns", 2, Acq::Closure),
    ("with_write(", "kernel.mounts.ns", 2, Acq::Closure),
    ("cgroups.lock(", "kernel.cgroups", 3, Acq::Guard),
    ("hostnames.read(", "kernel.hostnames", 3, Acq::Guard),
    ("hostnames.write(", "kernel.hostnames", 3, Acq::Guard),
    ("socket_nodes.lock(", "kernel.socket_nodes", 3, Acq::Guard),
    ("fanotify.lock(", "kernel.fanotify", 3, Acq::Guard),
    ("ns_refs.", "kernel.ns_refs", 3, Acq::Internal),
    ("counts.lock(", "kernel.ns_refs", 3, Acq::Guard),
    ("lru.lock(", "pagecache.lru", 4, Acq::Guard),
    ("flusher.lock(", "pagecache.flusher", 5, Acq::Guard),
];

struct LiveGuard {
    class: &'static str,
    group: u32,
    depth: i32,
    binding: Option<String>,
    line: usize,
}

fn acquisitions(code: &str) -> Vec<(&'static str, &'static str, u32, Acq)> {
    KERNEL_LOCKS
        .iter()
        .filter(|(pat, ..)| code.contains(pat))
        .copied()
        .collect()
}

/// Whether the acquisition call at `pat` in `code` is immediately chained
/// into another call (`.lock().attach(...)`): the guard is then a statement
/// temporary, released at the semicolon — a `let` on such a line binds the
/// chained call's result, not the guard.
fn is_chained(code: &str, pat: &str) -> bool {
    let Some(pos) = code.find(pat) else {
        return false;
    };
    let rest = &code[pos + pat.len()..];
    // Walk to the close of the acquisition call, then look for a `.`.
    let mut depth = if pat.ends_with('(') { 1 } else { 0 };
    let mut chars = rest.chars().peekable();
    while depth > 0 {
        match chars.next() {
            Some('(') => depth += 1,
            Some(')') => depth -= 1,
            Some(_) => {}
            None => return false, // call spans lines; assume not chained
        }
    }
    chars.peek() == Some(&'.')
}

/// Whether the acquisition on this line produces a lock that outlives the
/// line, and under what binding name. The rules depend on the pattern's
/// [`Acq`] kind — see its variants for the reasoning.
fn held_binding(code: &str, pat: &str, kind: Acq) -> Option<Option<String>> {
    match kind {
        Acq::Internal => None,
        Acq::Closure => {
            // Held only while the closure body runs: a body spanning lines
            // (the line leaves a brace open) needs tracking; a one-line
            // closure acquires and releases within the statement.
            (code.contains('|') && code.matches('{').count() > code.matches('}').count())
                .then_some(None)
        }
        Acq::Guard => {
            let trimmed = code.trim_start();
            if trimmed.starts_with("if let") || trimmed.starts_with("while let") {
                return Some(None);
            }
            if trimmed.starts_with("match ") || trimmed.contains("= match ") {
                return Some(None);
            }
            if let Some(rest) = trimmed.strip_prefix("let ") {
                if is_chained(code, pat) {
                    return None;
                }
                let name = rest
                    .trim_start_matches("mut ")
                    .split([' ', ':', '='])
                    .next()
                    .unwrap_or("")
                    .to_string();
                return Some(Some(name));
            }
            None
        }
    }
}

fn check_kernel_nesting(root: &Path, allow: &[AllowEntry], violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    rust_files(&root.join("crates/kernel/src"), &mut files);
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut depth: i32 = 0;
        let mut guards: Vec<LiveGuard> = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let code = strip_code(raw);
            if is_test_marker(&code) {
                break; // test modules end the file in this workspace
            }
            // Explicit early release.
            if let Some(rest) = code.trim_start().strip_prefix("drop(") {
                let name = rest.trim_end().trim_end_matches([')', ';']);
                guards.retain(|g| g.binding.as_deref() != Some(name));
            }
            let acquired = acquisitions(&code);
            for &(_, class, group, _) in &acquired {
                for g in &guards {
                    let conflict = if group < g.group {
                        Some("reverse rank order")
                    } else if group == g.group {
                        Some("peer/same-group nesting")
                    } else {
                        None
                    };
                    if let Some(kind) = conflict {
                        if !allowed(allow, &rel, raw) {
                            violations.push(Violation {
                                file: rel.clone(),
                                line: no + 1,
                                text: raw.to_string(),
                                message: format!(
                                    "acquires {class} while {held} is held ({kind}) — \
                                     see the rank table in crates/kernel/src/table.rs; \
                                     if this nesting is sound, add a justified entry to \
                                     lockdep-allow.toml",
                                    held = format_args!("{} (held since line {})", g.class, g.line)
                                ),
                            });
                        }
                    }
                }
            }
            let opens = code.matches('{').count() as i32;
            let closes = code.matches('}').count() as i32;
            for (pat, class, group, kind) in acquired {
                if allowed(allow, &rel, raw) {
                    continue;
                }
                if let Some(binding) = held_binding(&code, pat, kind) {
                    guards.push(LiveGuard {
                        class,
                        group,
                        // A guard taken on a block-opening line lives in
                        // the block it opens.
                        depth: depth + opens.min(1),
                        binding,
                        line: no + 1,
                    });
                }
            }
            depth += opens - closes;
            guards.retain(|g| g.depth <= depth);
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: guard unwraps
// ---------------------------------------------------------------------

fn check_guard_unwraps(root: &Path, violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    rust_files(&root.join("src"), &mut files);
    rust_files(&root.join("examples"), &mut files);
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .to_string();
        // Shims and the lockdep engine are the sanctioned homes of raw std
        // locks (rule 1), so their guard handling is their own business.
        if rel.starts_with("crates/lockdep") || rel.contains("/tests/") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        for (no, raw) in text.lines().enumerate() {
            let code = strip_code(raw);
            if is_test_marker(&code) {
                break;
            }
            if code.contains(".lock().unwrap()")
                || code.contains(".read().unwrap()")
                || code.contains(".write().unwrap()")
            {
                violations.push(Violation {
                    file: rel.clone(),
                    line: no + 1,
                    text: raw.to_string(),
                    message: "unwrap on a lock guard — shim guards are infallible; a \
                              Result here means a std lock bypassed the shim"
                        .to_string(),
                });
            }
        }
    }
}

#[test]
fn repo_obeys_the_lock_discipline() {
    let root = repo_root();
    let allow = load_allowlist(&root);
    let mut violations = Vec::new();
    check_std_sync_ban(&root, &mut violations);
    check_kernel_nesting(&root, &allow, &mut violations);
    check_guard_unwraps(&root, &mut violations);
    if !violations.is_empty() {
        let mut msg = format!("{} lock-discipline violation(s):\n", violations.len());
        for v in &violations {
            let _ = writeln!(msg, "{}", v.render());
        }
        panic!("{msg}");
    }
}

// ---------------------------------------------------------------------
// Rule 4: observability metric names
// ---------------------------------------------------------------------

/// A statically registered metric: `(file, line, subsystem variant, name)`.
struct MetricDecl {
    file: String,
    line: usize,
    subsystem: String,
    name: String,
}

/// Extracts every `Lazy{Counter,Gauge,Histogram}::new(Subsystem::X, "...")`
/// in non-test code. Works on whole-file text because the declarations
/// routinely wrap across lines under rustfmt.
fn metric_decls(root: &Path) -> Vec<MetricDecl> {
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    rust_files(&root.join("src"), &mut files);
    rust_files(&root.join("examples"), &mut files);
    let mut decls = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap()
            .to_string_lossy()
            .to_string();
        // The obs crate's own sources/tests register scratch names to test
        // the registry machinery; only real subsystems are linted.
        if rel.starts_with("crates/obs") || rel.contains("/tests/") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        // Test modules end their file in this workspace (rule 2 relies on
        // the same convention), so everything after the marker is test code.
        let text = text
            .split("#[cfg(test)]")
            .next()
            .unwrap_or_default()
            .to_string();
        for pat in [
            "LazyCounter::new(",
            "LazyGauge::new(",
            "LazyHistogram::new(",
        ] {
            let mut from = 0;
            while let Some(pos) = text[from..].find(pat) {
                let at = from + pos + pat.len();
                from = at;
                let rest = &text[at..];
                let Some(subsystem) = rest
                    .trim_start()
                    .strip_prefix("Subsystem::")
                    .and_then(|s| s.split([',', ')']).next())
                else {
                    continue; // not a literal-subsystem call site
                };
                let Some(open) = rest.find('"') else { continue };
                let Some(len) = rest[open + 1..].find('"') else {
                    continue;
                };
                decls.push(MetricDecl {
                    file: rel.clone(),
                    line: text[..at].lines().count(),
                    subsystem: subsystem.trim().to_string(),
                    name: rest[open + 1..open + 1 + len].to_string(),
                });
            }
        }
    }
    decls
}

/// `subsystem.noun-phrase[...]`: lowercase alphanumeric segments joined by
/// `.`, dashes only inside a segment.
fn is_kebab_dot_cased(name: &str) -> bool {
    let segment_ok = |s: &str| {
        !s.is_empty()
            && s.split('-').all(|w| {
                !w.is_empty()
                    && w.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
            })
    };
    name.split('.').count() >= 2 && name.split('.').all(segment_ok)
}

#[test]
fn obs_metric_names_are_unique_and_well_formed() {
    let root = repo_root();
    let decls = metric_decls(&root);
    assert!(
        decls.len() >= 20,
        "metric scanner only found {} declarations — pattern drift?",
        decls.len()
    );
    let prefixes = [
        ("Fuse", "fuse."),
        ("PageCache", "pagecache."),
        ("Overlay", "overlay."),
        ("Engine", "engine."),
        ("Core", "core."),
        ("Lockdep", "lockdep."),
        ("BlockDev", "blockdev."),
    ];
    let mut seen: std::collections::HashMap<&str, &MetricDecl> = std::collections::HashMap::new();
    let mut problems = Vec::new();
    for d in &decls {
        if !is_kebab_dot_cased(&d.name) {
            problems.push(format!(
                "{}:{}: metric {:?} is not kebab/dot-cased",
                d.file, d.line, d.name
            ));
        }
        match prefixes.iter().find(|(v, _)| *v == d.subsystem) {
            Some((_, prefix)) if !d.name.starts_with(prefix) => problems.push(format!(
                "{}:{}: metric {:?} must start with {prefix:?} (its Subsystem::{})",
                d.file, d.line, d.name, d.subsystem
            )),
            None => problems.push(format!(
                "{}:{}: unknown subsystem Subsystem::{} — extend the lint's prefix table",
                d.file, d.line, d.subsystem
            )),
            _ => {}
        }
        if let Some(first) = seen.insert(&d.name, d) {
            problems.push(format!(
                "{}:{}: metric {:?} already registered at {}:{}",
                d.file, d.line, d.name, first.file, first.line
            ));
        }
    }
    assert!(
        problems.is_empty(),
        "{} metric-name violation(s):\n{}",
        problems.len(),
        problems.join("\n")
    );
}

#[test]
fn allowlist_entries_still_match_a_line() {
    // A stale allow entry is a hole waiting for a new violation to hide
    // in: every entry must still match at least one line of its file.
    let root = repo_root();
    for e in load_allowlist(&root) {
        let text = std::fs::read_to_string(root.join(&e.file))
            .unwrap_or_else(|_| panic!("lockdep-allow.toml names missing file {}", e.file));
        assert!(
            text.lines().any(|l| l.contains(&e.contains)),
            "stale lockdep-allow.toml entry: {} no longer contains {:?}",
            e.file,
            e.contains
        );
    }
}
