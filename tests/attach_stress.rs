//! Attach-plane scale stress: one epoll event loop multiplexing a
//! thousand concurrent attach sessions (ISSUE acceptance gate).
//!
//! One kernel, the full four-engine matrix, one shared `Cntr` — hence
//! one shared attach plane. Every session runs its own container,
//! registers a pty pair, and forwards a socket from inside its nested
//! namespace to one shared host service. The test then streams over
//! every forwarded connection, injects the two classic per-session
//! faults — a dead upstream and a stalled reader — and asserts they
//! are invisible to the other sessions, that the plane's interest set
//! stays exactly proportional to live endpoints, and that teardown
//! returns the loop to empty.
//!
//! CI runs this in the release stress job under `--features lockdep`;
//! any lock-order violation or a lock held across the event-loop park
//! point panics the test. In debug (tier-1) the session count is
//! scaled down; the release run uses the full 1000.

use cntr::prelude::*;
use std::sync::Arc;

/// Sessions per engine flavour. 250 × 4 = 1000 in release; debug
/// builds (tier-1's `cargo test -q`) run a reduced matrix.
const PER_ENGINE: usize = if cfg!(debug_assertions) { 25 } else { 250 };

const SVC_PATH: &str = "/run/stress-svc.sock";
const DEAD_PATH: &str = "/run/nobody-listens.sock";

fn host_with_tools() -> Kernel {
    let kernel = boot_host(SimClock::new());
    for tool in ["ls", "cat", "tee", "hostname"] {
        let path = format!("/usr/bin/{tool}");
        let fd = kernel
            .open(Pid::INIT, &path, OpenFlags::create(), Mode::RWXR_XR_X)
            .unwrap();
        kernel.write_fd(Pid::INIT, fd, b"tool").unwrap();
        kernel.close(Pid::INIT, fd).unwrap();
        kernel.chmod(Pid::INIT, &path, Mode::RWXR_XR_X).unwrap();
    }
    kernel.setenv(Pid::INIT, "PATH", "/usr/bin").unwrap();
    kernel
}

fn app_image() -> Arc<cntr::engine::Image> {
    ImageBuilder::new("app", "slim")
        .layer("app")
        .binary("/usr/local/bin/app", 500_000, &[])
        .text("/etc/app.conf", "socket=/tmp/app.sock\n")
        .entrypoint("/usr/local/bin/app")
        .build()
}

/// Reads everything currently buffered on `fd` (stops on EAGAIN/EOF).
fn drain(kernel: &Kernel, pid: Pid, fd: u32) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    while let Ok(n) = kernel.read_fd(pid, fd, &mut buf) {
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    out
}

#[test]
fn thousand_sessions_share_one_plane() {
    let kernel = host_with_tools();
    let registry = Registry::new();
    registry.push(app_image());
    let runtimes = ContainerRuntime::matrix(kernel.clone(), registry);
    let total = PER_ENGINE * runtimes.len();

    // The one shared host service every session forwards to.
    let svc = kernel.bind_listener(Pid::INIT, SVC_PATH).unwrap();

    // ---- Launch: container + attach + forwarded socket, per session. ----
    let cntr = Cntr::new(kernel.clone());
    let mut sessions = Vec::with_capacity(total);
    for i in 0..total {
        let rt = &runtimes[i % runtimes.len()];
        let name = format!("c{i}");
        let c = rt.run(&name, "app:slim").unwrap();
        let session = cntr.attach(c.pid, CntrOptions::default()).unwrap();
        let proxy = session
            .forward_socket("/var/lib/cntr/tmp/app.sock", SVC_PATH)
            .unwrap();
        sessions.push((c, session, proxy));
    }
    let plane = cntr.plane().unwrap();
    // Every session shares the single plane.
    for (_, session, _) in &sessions {
        assert!(Arc::ptr_eq(session.plane(), &plane));
    }
    // Exactly one listener + one pty pair (two pipe ends) per session.
    assert_eq!(plane.endpoints(), 3 * total);
    assert_eq!(plane.interest_len().unwrap(), 3 * total);

    // ---- Connect: every app dials its own container's socket. ----
    let mut clients = Vec::with_capacity(total);
    for (c, _, _) in &sessions {
        clients.push(kernel.connect(c.pid, "/tmp/app.sock").unwrap());
    }
    plane.pump_until_quiet().unwrap();
    let mut host_conns = Vec::new();
    while let Ok(conn) = kernel.accept(Pid::INIT, svc) {
        host_conns.push(conn);
    }
    assert_eq!(host_conns.len(), total, "every session's dial was accepted");
    assert_eq!(plane.endpoints(), 3 * total + 2 * total);
    for (_, _, proxy) in &sessions {
        assert_eq!((proxy.connections(), proxy.accepted()), (1, 1));
    }

    // ---- Stream: request/response over every forwarded connection. ----
    for round in 0..3 {
        for (i, (c, _, _)) in sessions.iter().enumerate() {
            let msg = format!("sess-{i}-round-{round}");
            kernel.write_fd(c.pid, clients[i], msg.as_bytes()).unwrap();
        }
        plane.pump_until_quiet().unwrap();
        // The host answers on whichever conn carried which payload, so
        // replies route back to the right session by construction.
        for conn in &host_conns {
            let req = drain(&kernel, Pid::INIT, *conn);
            assert!(!req.is_empty(), "round {round}: host saw no request");
            let mut reply = b"ok:".to_vec();
            reply.extend_from_slice(&req);
            kernel.write_fd(Pid::INIT, *conn, &reply).unwrap();
        }
        plane.pump_until_quiet().unwrap();
        for (i, (c, _, _)) in sessions.iter().enumerate() {
            let got = drain(&kernel, c.pid, clients[i]);
            let want = format!("ok:sess-{i}-round-{round}");
            assert_eq!(got, want.as_bytes(), "session {i} round {round}");
        }
    }

    // ---- Fault 1: a dead upstream on one session hurts only itself. ----
    let (victim_c, victim_s, _) = &sessions[0];
    let dead = victim_s
        .forward_socket("/var/lib/cntr/tmp/dead.sock", DEAD_PATH)
        .unwrap();
    let doomed = kernel.connect(victim_c.pid, "/tmp/dead.sock").unwrap();
    plane.pump_until_quiet().unwrap();
    assert_eq!(dead.dial_errors(), 1);
    assert_eq!(dead.connections(), 0);
    // The doomed client observes a closed peer...
    let mut buf = [0u8; 8];
    assert!(matches!(
        kernel.read_fd(victim_c.pid, doomed, &mut buf),
        Ok(0) | Err(_)
    ));
    // ...while the same session's healthy connection still round-trips.
    kernel
        .write_fd(victim_c.pid, clients[0], b"still-alive")
        .unwrap();
    plane.pump_until_quiet().unwrap();
    assert_eq!(drain(&kernel, Pid::INIT, host_conns[0]), b"still-alive");
    dead.unregister();

    // ---- Fault 2: a stalled reader parks only its own direction. ----
    // Session 1's host peer stops reading; the client pushes far more
    // than any buffer holds. The plane must park that direction and
    // keep every other session streaming.
    let stalled = 1usize;
    let payload: Vec<u8> = (0..256 * 1024).map(|i| (i % 251) as u8).collect();
    let mut sent = 0usize;
    while sent < payload.len() {
        match kernel.write_fd(sessions[stalled].0.pid, clients[stalled], &payload[sent..]) {
            Ok(n) => sent += n,
            Err(_) => {
                // Client-side buffer full: the plane must drain what it
                // can (up to the parked direction) before more fits.
                plane.pump_until_quiet().unwrap();
                break;
            }
        }
        plane.pump_until_quiet().unwrap();
    }
    // Other sessions are untouched by the parked neighbour.
    for probe in [2usize, total / 2, total - 1] {
        let (c, _, _) = &sessions[probe];
        kernel.write_fd(c.pid, clients[probe], b"ping").unwrap();
        plane.pump_until_quiet().unwrap();
        assert_eq!(
            drain(&kernel, Pid::INIT, host_conns[probe]),
            b"ping",
            "session {probe} blocked behind a stalled neighbour"
        );
    }
    // The stalled host peer wakes up and drains; every byte arrives
    // intact and in order once the parked direction resumes.
    let mut received = Vec::new();
    loop {
        let chunk = drain(&kernel, Pid::INIT, host_conns[stalled]);
        // Finish the client's send once room frees up.
        while sent < payload.len() {
            match kernel.write_fd(sessions[stalled].0.pid, clients[stalled], &payload[sent..]) {
                Ok(n) => sent += n,
                Err(_) => break,
            }
        }
        let moved = plane.pump_until_quiet().unwrap();
        if chunk.is_empty() && moved == 0 && sent == payload.len() {
            break;
        }
        received.extend_from_slice(&chunk);
    }
    received.extend_from_slice(&drain(&kernel, Pid::INIT, host_conns[stalled]));
    assert_eq!(received, payload, "stalled session lost or reordered bytes");

    // ---- Interest set stays bounded: nothing accumulated. ----
    assert_eq!(plane.endpoints(), 3 * total + 2 * total);
    assert_eq!(plane.interest_len().unwrap(), plane.endpoints());

    // ---- Teardown: close conns, detach everything, plane is empty. ----
    for (i, (c, _, _)) in sessions.iter().enumerate() {
        kernel.close(c.pid, clients[i]).unwrap();
        kernel.close(Pid::INIT, host_conns[i]).unwrap();
    }
    plane.pump_until_quiet().unwrap();
    for (_, _, proxy) in &sessions {
        assert_eq!(proxy.connections(), 0);
    }
    assert_eq!(plane.endpoints(), 3 * total);
    for (c, session, _) in sessions {
        session.detach().unwrap();
        drop(c);
    }
    assert_eq!(plane.endpoints(), 0, "plane must be empty after teardown");
    assert_eq!(plane.interest_len().unwrap(), 0);

    // Under `--features lockdep` (the CI stress job) any ordering
    // violation above would have panicked; the plane's classes must
    // also have been exercised and ranked.
    let report = lockdep::report();
    for class in [
        "core.attach.plane",
        "core.attach.proxies",
        "core.attach.loop-state",
    ] {
        assert!(
            report.classes.iter().any(|c| c.name == class),
            "lock class {class} never registered"
        );
    }
}
